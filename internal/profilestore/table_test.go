package profilestore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"teeperf/internal/faultinject"
	"teeperf/internal/shmlog"
)

// tableEntries builds a deterministic counter-ordered stream: tid 1 and 2
// alternating balanced call/return pairs.
func tableEntries(n int) []shmlog.Entry {
	out := make([]shmlog.Entry, 0, 2*n)
	tick := uint64(0)
	for i := 0; i < n; i++ {
		tid := uint64(1 + i%2)
		addr := uint64(0x400010 + 16*(i%3))
		tick += 3
		out = append(out, shmlog.Entry{Kind: shmlog.KindCall, Counter: tick, Addr: addr, ThreadID: tid})
		tick += 5
		out = append(out, shmlog.Entry{Kind: shmlog.KindReturn, Counter: tick, Addr: addr, ThreadID: tid})
	}
	return out
}

func writeTestTable(t *testing.T, path string, entries []shmlog.Entry, blockEntries int) tableInfo {
	t.Helper()
	info, err := writeTable(path, entries, 4242, 0x400000, 1, blockEntries, faultinject.New(0))
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestTableRoundTrip(t *testing.T) {
	entries := tableEntries(100)
	path := filepath.Join(t.TempDir(), "t.tpt")
	info := writeTestTable(t, path, entries, 16)

	if info.Entries != uint64(len(entries)) {
		t.Fatalf("info.Entries = %d, want %d", info.Entries, len(entries))
	}
	if info.MinCounter != entries[0].Counter || info.MaxCounter != entries[len(entries)-1].Counter {
		t.Fatalf("counter bounds [%d,%d] disagree with stream", info.MinCounter, info.MaxCounter)
	}

	tbl, err := OpenTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	if tbl.Info() != info {
		t.Fatalf("reader info %+v, writer info %+v", tbl.Info(), info)
	}
	if want := (len(entries) + 15) / 16; tbl.Blocks() != want {
		t.Fatalf("Blocks() = %d, want %d", tbl.Blocks(), want)
	}
	var got []shmlog.Entry
	for i := 0; i < tbl.Blocks(); i++ {
		blk, err := tbl.ReadBlock(i)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		got = append(got, blk...)
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range got {
		if got[i] != entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], entries[i])
		}
	}
	if !tbl.HasTID(1) || !tbl.HasTID(2) || tbl.HasTID(3) {
		t.Fatalf("tid list wrong: has1=%v has2=%v has3=%v", tbl.HasTID(1), tbl.HasTID(2), tbl.HasTID(3))
	}
}

func TestTableEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.tpt")
	writeTestTable(t, path, nil, 16)
	tbl, err := OpenTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	if tbl.Blocks() != 0 || tbl.Info().Entries != 0 {
		t.Fatalf("empty table decoded as %d blocks / %d entries", tbl.Blocks(), tbl.Info().Entries)
	}
	if tbl.HasTID(1) {
		t.Fatal("empty table claims to hold tid 1")
	}
}

func TestTableTIDOverflowMeansUnknown(t *testing.T) {
	var entries []shmlog.Entry
	for i := 0; i < tidListCap+10; i++ {
		entries = append(entries, shmlog.Entry{
			Kind: shmlog.KindCall, Counter: uint64(i + 1), Addr: 0x400010, ThreadID: uint64(i + 1),
		})
	}
	path := filepath.Join(t.TempDir(), "wide.tpt")
	writeTestTable(t, path, entries, 32)
	tbl, err := OpenTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	// Unknown list: every tid may be present, including ones that are not.
	if !tbl.HasTID(1) || !tbl.HasTID(999999) {
		t.Fatal("overflowed tid list must answer true for any tid")
	}
}

// TestTableTornAndCorrupt: every torn prefix fails open (tail magic or
// footer CRC), and a bit flip in a block body is caught by the block CRC at
// read time even though open succeeds.
func TestTableTornAndCorrupt(t *testing.T) {
	entries := tableEntries(64)
	path := filepath.Join(t.TempDir(), "t.tpt")
	writeTestTable(t, path, entries, 8)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range []int{1, len(clean) / 2, len(clean) - 1} {
		if _, err := OpenTableReaderAt(bytes.NewReader(clean[:cut]), int64(cut)); err == nil {
			t.Errorf("torn table (%d of %d bytes) opened", cut, len(clean))
		}
	}

	// Flip one byte inside the first block's body: open must still succeed
	// (footer and index are intact) and the damaged block must fail its CRC.
	corrupt := append([]byte(nil), clean...)
	corrupt[len(tableMagic)+4] ^= 0x40
	tbl, err := OpenTableReaderAt(bytes.NewReader(corrupt), int64(len(corrupt)))
	if err != nil {
		t.Fatalf("bit-flipped block body failed open (should fail at read): %v", err)
	}
	if _, err := tbl.ReadBlock(0); err == nil {
		t.Fatal("corrupted block passed its CRC")
	}

	// Flip a footer byte: open must fail.
	corrupt = append([]byte(nil), clean...)
	corrupt[len(corrupt)-20] ^= 0x01
	if _, err := OpenTableReaderAt(bytes.NewReader(corrupt), int64(len(corrupt))); err == nil {
		t.Fatal("corrupted footer opened")
	}
}

func TestManifestRoundTripAndTorn(t *testing.T) {
	m := &manifest{
		Format:    manifestFormat,
		Seq:       7,
		NextTable: 3,
		Tables: []TableMeta{{
			File: tableName(2), Seq: 2, Level: 1, Entries: 10,
			MinCounter: 5, MaxCounter: 99, PID: 4242, SamplePeriod: 1,
			Segments: []string{"seg-a", "seg-b"},
		}},
	}
	data, err := encodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != m.Seq || got.NextTable != m.NextTable || len(got.Tables) != 1 {
		t.Fatalf("round trip mangled the manifest: %+v", got)
	}
	if segs := got.segments(); segs["seg-a"] != 2 || segs["seg-b"] != 2 {
		t.Fatalf("segments() = %v", segs)
	}

	for _, cut := range []int{0, 5, len(data) / 2, len(data) - 1} {
		if _, err := decodeManifest(data[:cut]); err == nil {
			t.Errorf("torn manifest (%d bytes) decoded", cut)
		}
	}
	flip := append([]byte(nil), data...)
	flip[len(flip)/2] ^= 0x10
	if _, err := decodeManifest(flip); err == nil {
		t.Error("bit-flipped manifest decoded")
	}
}

func TestBlockCacheLRU(t *testing.T) {
	c := newBlockCache(2)
	e := []shmlog.Entry{{Kind: shmlog.KindCall, Counter: 1, Addr: 2, ThreadID: 3}}
	c.put(1, 0, e)
	c.put(1, 1, e)
	if _, ok := c.get(1, 0); !ok {
		t.Fatal("block (1,0) missing before eviction")
	}
	c.put(2, 0, e) // evicts (1,1): (1,0) was just touched
	if _, ok := c.get(1, 1); ok {
		t.Fatal("cold block (1,1) survived past capacity")
	}
	if _, ok := c.get(1, 0); !ok {
		t.Fatal("hot block (1,0) evicted")
	}
	c.drop(1)
	if _, ok := c.get(1, 0); ok {
		t.Fatal("dropped table still cached")
	}
	n, capBlocks, hits, misses := c.stats()
	if n != 1 || capBlocks != 2 {
		t.Fatalf("stats len=%d cap=%d", n, capBlocks)
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("hit/miss accounting dead: hits=%d misses=%d", hits, misses)
	}
}
