package profilestore

import (
	"fmt"
	"testing"

	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// benchSegment builds one ~6k-entry balanced segment starting at a counter
// offset, so distinct segments occupy distinct windows.
func benchSegment(base uint64) (*symtab.Table, *shmlog.Log, uint64) {
	tab := symtab.New()
	var addrs []uint64
	for _, name := range []string{"pp_a", "pp_b", "pp_c", "pp_d"} {
		addrs = append(addrs, tab.MustRegister(name, 16, "bench_test.go", 1))
	}
	tick := base
	var entries []shmlog.Entry
	for r := 0; r < 750; r++ {
		for _, a := range addrs {
			tick++
			entries = append(entries, shmlog.Entry{Kind: shmlog.KindCall, Counter: tick, Addr: a, ThreadID: 7})
			tick += 2
			entries = append(entries, shmlog.Entry{Kind: shmlog.KindReturn, Counter: tick, Addr: a, ThreadID: 7})
		}
	}
	return tab, shmlog.FromEntries(entries, 4242, 0, 1), tick
}

// BenchmarkStoreIngest measures the full durable ingest path: sort, table
// write (with per-block CRCs), fsync, manifest commit, reader reopen.
func BenchmarkStoreIngest(b *testing.B) {
	st, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	tab, log, _ := benchSegment(0)
	entries := log.CommittedEntries()
	b.SetBytes(int64(len(entries) * entryBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.IngestLog(log, tab, fmt.Sprintf("seg-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreQuery measures a full-window time-travel query over a store
// of eight compacted-and-fresh tables, through the block cache.
func BenchmarkStoreQuery(b *testing.B) {
	st, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	var base uint64
	var total int
	for i := 0; i < 8; i++ {
		tab, log, next := benchSegment(base)
		base = next
		res, err := st.IngestLog(log, tab, fmt.Sprintf("seg-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		total += res.Entries
	}
	if _, err := st.MaybeCompact(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(total * entryBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Profile(AllThreads, 0, FullWindow); err != nil {
			b.Fatal(err)
		}
	}
}
