package profilestore

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"teeperf/internal/flamegraph"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// testSyms registers a small deterministic symbol set and returns the table
// plus the addresses of pp_a..pp_c.
func testSyms(t *testing.T) (*symtab.Table, []uint64) {
	t.Helper()
	tab := symtab.New()
	addrs := make([]uint64, 3)
	for i, name := range []string{"pp_a", "pp_b", "pp_c"} {
		addrs[i] = tab.MustRegister(name, 16, "store_test.go", 10+i)
	}
	return tab, addrs
}

// segLog builds a deterministic single-thread balanced segment over addrs,
// continuing the virtual counter from *tick.
func segLog(addrs []uint64, tick *uint64, rounds int) *shmlog.Log {
	var entries []shmlog.Entry
	for r := 0; r < rounds; r++ {
		for _, a := range addrs {
			*tick++
			entries = append(entries, shmlog.Entry{Kind: shmlog.KindCall, Counter: *tick, Addr: a, ThreadID: 7})
			*tick += 2
			entries = append(entries, shmlog.Entry{Kind: shmlog.KindReturn, Counter: *tick, Addr: a, ThreadID: 7})
		}
	}
	return shmlog.FromEntries(entries, 4242, 0, 1)
}

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	st, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func foldedBytes(t *testing.T, st *Store, tid, from, to uint64) string {
	t.Helper()
	p, err := st.Profile(tid, from, to)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := flamegraph.WriteFolded(&buf, p.Folded()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestStoreIngestAndReopen(t *testing.T) {
	dir := t.TempDir()
	tab, addrs := testSyms(t)
	st := mustOpen(t, dir, Options{BlockEntries: 8})
	if !st.Report().Clean() {
		t.Fatalf("fresh open not clean: %+v", st.Report())
	}

	tick := uint64(0)
	res, err := st.IngestLog(segLog(addrs, &tick, 5), tab, "seg-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Duplicate || res.Entries != 30 {
		t.Fatalf("first ingest: %+v", res)
	}
	dup, err := st.IngestLog(segLog(addrs, &tick, 5), tab, "seg-1")
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Duplicate || dup.TableSeq != res.TableSeq {
		t.Fatalf("duplicate ingest not detected: %+v", dup)
	}
	if _, err := st.IngestLog(segLog(addrs, &tick, 3), tab, "seg-2"); err != nil {
		t.Fatal(err)
	}

	want := foldedBytes(t, st, AllThreads, 0, FullWindow)
	if !strings.Contains(want, "pp_a") {
		t.Fatalf("folded output not symbolized:\n%s", want)
	}
	stats := st.Stats()
	if stats.Tables != 2 || stats.Segments != 2 || stats.Entries != 30+18 {
		t.Fatalf("stats after two ingests: %+v", stats)
	}
	st.Close()

	re := mustOpen(t, dir, Options{BlockEntries: 8})
	if !re.Report().Clean() {
		t.Fatalf("clean reopen reported repairs: %+v", re.Report())
	}
	if got := foldedBytes(t, re, AllThreads, 0, FullWindow); got != want {
		t.Fatalf("reopened profile diverged:\n got %q\nwant %q", got, want)
	}
	if segs := re.Segments(); len(segs) != 2 {
		t.Fatalf("segments after reopen: %v", segs)
	}
}

func TestStoreEmptySegmentAcknowledged(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{})
	log := shmlog.FromEntries(nil, 4242, 0, 1)
	res, err := st.IngestLog(log, nil, "seg-empty")
	if err != nil {
		t.Fatal(err)
	}
	if res.Duplicate || res.Entries != 0 {
		t.Fatalf("empty ingest: %+v", res)
	}
	if _, ok := st.Segments()["seg-empty"]; !ok {
		t.Fatal("empty segment not acknowledged")
	}
	if _, _, ok := st.Bounds(); ok {
		t.Fatal("empty store claims counter bounds")
	}
}

func TestStoreTimeTravelWindows(t *testing.T) {
	tab, addrs := testSyms(t)
	st := mustOpen(t, t.TempDir(), Options{BlockEntries: 4})
	tick := uint64(0)
	if _, err := st.IngestLog(segLog(addrs, &tick, 4), tab, "seg-1"); err != nil {
		t.Fatal(err)
	}
	mid := tick
	if _, err := st.IngestLog(segLog(addrs, &tick, 4), tab, "seg-2"); err != nil {
		t.Fatal(err)
	}

	full := foldedBytes(t, st, AllThreads, 0, FullWindow)
	first := foldedBytes(t, st, AllThreads, 0, mid)
	second := foldedBytes(t, st, AllThreads, mid+1, FullWindow)
	if first == full || second == full {
		t.Fatal("window restriction had no effect")
	}
	// The two segments are identical streams, so their windows fold alike.
	if first != second {
		t.Fatalf("identical windows folded differently:\nA %q\nB %q", first, second)
	}

	// Thread filter: tid 7 holds everything, tid 99 nothing.
	if got := foldedBytes(t, st, 7, 0, FullWindow); got != full {
		t.Fatalf("tid filter on the only thread changed output")
	}
	if got := foldedBytes(t, st, 99, 0, FullWindow); got != "" {
		t.Fatalf("absent tid folded to %q", got)
	}

	if _, err := st.Profile(AllThreads, 10, 5); err == nil {
		t.Fatal("inverted window accepted")
	}
}

func TestStoreMixedSessionShapes(t *testing.T) {
	tab, addrs := testSyms(t)
	st := mustOpen(t, t.TempDir(), Options{})
	tick := uint64(0)
	if _, err := st.IngestLog(segLog(addrs, &tick, 2), tab, "seg-a"); err != nil {
		t.Fatal(err)
	}
	other := shmlog.FromEntries([]shmlog.Entry{
		{Kind: shmlog.KindCall, Counter: tick + 1, Addr: addrs[0], ThreadID: 7},
		{Kind: shmlog.KindReturn, Counter: tick + 2, Addr: addrs[0], ThreadID: 7},
	}, 9999, 0, 1) // different PID → different shape
	if _, err := st.IngestLog(other, tab, "seg-b"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Profile(AllThreads, 0, FullWindow); err == nil {
		t.Fatal("mixed-shape full-window query succeeded")
	} else if !strings.Contains(err.Error(), "mixed session shapes") {
		t.Fatalf("wrong error: %v", err)
	}
	// A window touching only one shape still works.
	if _, err := st.Profile(AllThreads, 0, tick); err != nil {
		t.Fatalf("single-shape window failed: %v", err)
	}
	// Full compaction must not merge across shapes.
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Tables; got != 2 {
		t.Fatalf("compaction collapsed mixed shapes into %d tables", got)
	}
}

func TestStoreCompactionPolicy(t *testing.T) {
	tab, addrs := testSyms(t)
	st := mustOpen(t, t.TempDir(), Options{Fanout: 2, BlockEntries: 4})
	tick := uint64(0)
	for _, id := range []string{"s1", "s2", "s3"} {
		if _, err := st.IngestLog(segLog(addrs, &tick, 2), tab, id); err != nil {
			t.Fatal(err)
		}
	}
	want := foldedBytes(t, st, AllThreads, 0, FullWindow)

	if st.Stats().Backlog == 0 {
		t.Fatal("three L0 tables at fanout 2: backlog should be nonzero")
	}
	ran, err := st.MaybeCompact()
	if err != nil || !ran {
		t.Fatalf("MaybeCompact = %v, %v", ran, err)
	}
	// 3 L0 → (merge 2) → 1 L0 + 1 L1; nothing eligible at fanout 2 per level.
	stats := st.Stats()
	if stats.Tables != 2 || stats.Levels != 2 || stats.Compactions != 1 {
		t.Fatalf("after one step: %+v", stats)
	}
	if got := foldedBytes(t, st, AllThreads, 0, FullWindow); got != want {
		t.Fatalf("mid-compaction profile diverged:\n got %q\nwant %q", got, want)
	}

	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	stats = st.Stats()
	if stats.Tables != 1 || stats.Backlog != 0 {
		t.Fatalf("after full compaction: %+v", stats)
	}
	if len(st.Segments()) != 3 {
		t.Fatalf("segments after compaction: %v", st.Segments())
	}
	if got := foldedBytes(t, st, AllThreads, 0, FullWindow); got != want {
		t.Fatalf("post-compaction profile diverged:\n got %q\nwant %q", got, want)
	}

	// On-disk steady state: one table file, one manifest, CURRENT, symbols.
	ents, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var tables, manifests int
	for _, e := range ents {
		switch {
		case strings.HasPrefix(e.Name(), "tbl-"):
			tables++
		case strings.HasPrefix(e.Name(), "MANIFEST-"):
			manifests++
		}
	}
	if tables != 1 || manifests != 1 {
		t.Fatalf("steady-state dir holds %d tables, %d manifests", tables, manifests)
	}
}

func TestStoreBackgroundCompactor(t *testing.T) {
	tab, addrs := testSyms(t)
	st := mustOpen(t, t.TempDir(), Options{Fanout: 2, BlockEntries: 4})
	tick := uint64(0)
	for _, id := range []string{"s1", "s2", "s3", "s4"} {
		if _, err := st.IngestLog(segLog(addrs, &tick, 2), tab, id); err != nil {
			t.Fatal(err)
		}
	}
	want := foldedBytes(t, st, AllThreads, 0, FullWindow)
	st.StartCompactor(time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().Backlog > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("compactor never drained: %+v", st.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	st.StopCompactor()
	if st.Stats().Compactions == 0 {
		t.Fatal("compactor ran zero steps")
	}
	if got := foldedBytes(t, st, AllThreads, 0, FullWindow); got != want {
		t.Fatalf("background compaction diverged:\n got %q\nwant %q", got, want)
	}
}

func TestStoreCacheServesReads(t *testing.T) {
	tab, addrs := testSyms(t)
	st := mustOpen(t, t.TempDir(), Options{BlockEntries: 4, CacheBlocks: 64})
	tick := uint64(0)
	if _, err := st.IngestLog(segLog(addrs, &tick, 8), tab, "seg"); err != nil {
		t.Fatal(err)
	}
	first := foldedBytes(t, st, AllThreads, 0, FullWindow)
	cold := st.Stats()
	if cold.CacheMisses == 0 {
		t.Fatal("cold query recorded no misses")
	}
	second := foldedBytes(t, st, AllThreads, 0, FullWindow)
	warm := st.Stats()
	if first != second {
		t.Fatal("cached query diverged from cold query")
	}
	if warm.CacheHits <= cold.CacheHits {
		t.Fatalf("warm query recorded no hits: cold %+v warm %+v", cold, warm)
	}
	if warm.HitRate() <= 0 || warm.HitRate() > 1 {
		t.Fatalf("hit rate out of range: %v", warm.HitRate())
	}
}

// TestStoreReopenRepairs exercises the recovery paths: dangling CURRENT,
// torn table, and stray uncommitted leftovers — each must be repaired and
// reported, never silently.
func TestStoreReopenRepairs(t *testing.T) {
	tab, addrs := testSyms(t)
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{BlockEntries: 4})
	tick := uint64(0)
	if _, err := st.IngestLog(segLog(addrs, &tick, 3), tab, "seg-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.IngestLog(segLog(addrs, &tick, 3), tab, "seg-2"); err != nil {
		t.Fatal(err)
	}
	want := foldedBytes(t, st, AllThreads, 0, FullWindow)
	st.Close()

	t.Run("dangling-current", func(t *testing.T) {
		if err := os.WriteFile(filepath.Join(dir, currentName), []byte("MANIFEST-999999\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		re := mustOpen(t, dir, Options{BlockEntries: 4})
		rep := re.Report()
		if !rep.CurrentFallback || len(rep.Corruption) == 0 {
			t.Fatalf("dangling CURRENT not reported: %+v", rep)
		}
		if got := foldedBytes(t, re, AllThreads, 0, FullWindow); got != want {
			t.Fatalf("fallback lost data:\n got %q\nwant %q", got, want)
		}
		re.Close()
		// The fallback open rewrote nothing; a second open after the sweep
		// sees a consistent CURRENT again only after the next commit, so
		// restore it for the following subtests by reopening and committing.
		re2 := mustOpen(t, dir, Options{BlockEntries: 4})
		if _, err := re2.IngestLog(segLog(addrs, &tick, 1), tab, "seg-heal"); err != nil {
			t.Fatal(err)
		}
		want = foldedBytes(t, re2, AllThreads, 0, FullWindow)
		re2.Close()
	})

	t.Run("stray-files", func(t *testing.T) {
		for _, n := range []string{"junk.tmp", "tbl-990000.tpt"} {
			if err := os.WriteFile(filepath.Join(dir, n), []byte("garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		re := mustOpen(t, dir, Options{BlockEntries: 4})
		rep := re.Report()
		if len(rep.SweptTemp) != 1 || len(rep.SweptOrphans) != 1 {
			t.Fatalf("stray files not swept: %+v", rep)
		}
		if got := foldedBytes(t, re, AllThreads, 0, FullWindow); got != want {
			t.Fatal("sweep changed query results")
		}
		re.Close()
	})

	t.Run("torn-table", func(t *testing.T) {
		// Truncate the newest table file in place.
		tms := func() []TableMeta {
			re := mustOpen(t, dir, Options{BlockEntries: 4})
			defer re.Close()
			return re.Tables()
		}()
		victim := filepath.Join(dir, tms[len(tms)-1].File)
		data, err := os.ReadFile(victim)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(victim, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		re := mustOpen(t, dir, Options{BlockEntries: 4})
		rep := re.Report()
		if len(rep.DroppedTables) != 1 {
			t.Fatalf("torn table not dropped: %+v", rep)
		}
		// The damaged segment is gone from the acknowledged set, so
		// re-ingesting it is accepted (not a duplicate) and restores the data.
		if _, ok := re.Segments()["seg-heal"]; ok {
			t.Fatal("segment of dropped table still acknowledged")
		}
		res, err := re.IngestLog(segLog(addrs, &tick, 1), tab, "seg-heal-2")
		if err != nil || res.Duplicate {
			t.Fatalf("re-ingest after drop: %+v, %v", res, err)
		}
		re.Close()
	})
}

func TestStoreDiff(t *testing.T) {
	tab, addrs := testSyms(t)
	st := mustOpen(t, t.TempDir(), Options{BlockEntries: 4})
	tick := uint64(0)
	if _, err := st.IngestLog(segLog(addrs, &tick, 3), tab, "seg-1"); err != nil {
		t.Fatal(err)
	}
	mid := tick
	// Second window: pp_a only, so its share grows and pp_b/pp_c shrink.
	var entries []shmlog.Entry
	for i := 0; i < 6; i++ {
		tick++
		entries = append(entries, shmlog.Entry{Kind: shmlog.KindCall, Counter: tick, Addr: addrs[0], ThreadID: 7})
		tick += 2
		entries = append(entries, shmlog.Entry{Kind: shmlog.KindReturn, Counter: tick, Addr: addrs[0], ThreadID: 7})
	}
	if _, err := st.IngestLog(shmlog.FromEntries(entries, 4242, 0, 1), tab, "seg-2"); err != nil {
		t.Fatal(err)
	}

	pa, pb, rows, err := st.Diff(AllThreads, 0, mid, mid+1, FullWindow)
	if err != nil {
		t.Fatal(err)
	}
	if pa == nil || pb == nil || len(rows) == 0 {
		t.Fatalf("diff returned pa=%v pb=%v rows=%d", pa, pb, len(rows))
	}
	var sawGrow bool
	for _, r := range rows {
		if r.Name == "pp_a" && r.DeltaShare > 0 {
			sawGrow = true
		}
	}
	if !sawGrow {
		t.Fatalf("pp_a should grow in window B; rows: %+v", rows)
	}
}

func TestStoreClosedRefusesWork(t *testing.T) {
	tab, addrs := testSyms(t)
	st := mustOpen(t, t.TempDir(), Options{})
	tick := uint64(0)
	if _, err := st.IngestLog(segLog(addrs, &tick, 1), tab, "seg"); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := st.IngestLog(segLog(addrs, &tick, 1), tab, "seg-2"); err == nil {
		t.Fatal("ingest after Close succeeded")
	}
	if err := st.Compact(); err == nil {
		t.Fatal("compaction after Close succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}
