package profilestore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"teeperf/internal/faultinject"
	"teeperf/internal/recorder"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// symsName is the store-wide symbol side file: the union of every ingested
// segment's symbols (first registration of a name wins), in the same
// TEESYM1 format the recorder publishes, so symtab.Read loads it back.
const symsName = "symbols.teesym"

// Options parameterizes a Store. The zero value means defaults.
type Options struct {
	// BlockEntries is the number of entries per table block (default 512).
	BlockEntries int
	// CacheBlocks bounds the LRU block cache, in blocks (default 256).
	CacheBlocks int
	// Fanout is the leveled compaction trigger: when a level holds this
	// many tables of one session shape, they merge into the next level
	// (default 4).
	Fanout int
	// Injector is the fault injector the persistence steps consult
	// (default faultinject.Default — disabled).
	Injector *faultinject.Injector
}

func (o Options) withDefaults() Options {
	if o.BlockEntries <= 0 {
		o.BlockEntries = 512
	}
	if o.CacheBlocks <= 0 {
		o.CacheBlocks = 256
	}
	if o.Fanout < 2 {
		o.Fanout = 4
	}
	if o.Injector == nil {
		o.Injector = faultinject.Default
	}
	return o
}

// OpenReport is the structured account of everything open had to repair or
// discard: the recovery half of the crash-consistency contract. A store
// that went down mid-commit reopens with CurrentFallback or swept leftovers
// here — never with silent loss of an acknowledged segment.
type OpenReport struct {
	// ManifestSeq is the committed manifest the store loaded (0 = fresh).
	ManifestSeq uint64 `json:"manifest_seq"`
	// CurrentFallback is set when CURRENT was missing, torn, or dangling
	// and the store fell back to the newest manifest that validates.
	CurrentFallback bool `json:"current_fallback,omitempty"`
	// Corruption describes every invalid file encountered while resolving
	// the committed manifest.
	Corruption []string `json:"corruption,omitempty"`
	// DroppedTables lists manifest-referenced tables that failed
	// validation and were dropped from view (data loss, reported).
	DroppedTables []string `json:"dropped_tables,omitempty"`
	// SweptTemp, SweptOrphans and SweptManifests list the uncommitted
	// leftovers removed: .tmp files, unreferenced tables, and manifests
	// other than the committed one.
	SweptTemp      []string `json:"swept_temp,omitempty"`
	SweptOrphans   []string `json:"swept_orphans,omitempty"`
	SweptManifests []string `json:"swept_manifests,omitempty"`
	// SymsError reports a damaged symbol side file (the store still opens;
	// unresolvable addresses render as hex).
	SymsError string `json:"syms_error,omitempty"`
}

// Clean reports whether open found nothing to repair.
func (r OpenReport) Clean() bool {
	return !r.CurrentFallback && len(r.Corruption) == 0 && len(r.DroppedTables) == 0 &&
		len(r.SweptTemp) == 0 && len(r.SweptOrphans) == 0 && len(r.SweptManifests) == 0 &&
		r.SymsError == ""
}

// Stats is the store's observable state, exported as monitor gauges.
type Stats struct {
	Tables      int
	Levels      int
	Entries     uint64
	Segments    int
	Backlog     int
	Compactions uint64
	CacheLen    int
	CacheCap    int
	CacheHits   uint64
	CacheMisses uint64
}

// HitRate returns the cache hit fraction in [0,1] (0 before any read).
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// IngestResult is one segment's ingestion outcome.
type IngestResult struct {
	// Segment is the segment ID ingested (or found duplicate).
	Segment string
	// Duplicate is set when the segment was already acknowledged; the
	// store is unchanged and TableSeq names the table holding it.
	Duplicate bool
	// TableSeq is the table holding the segment's entries.
	TableSeq uint64
	// Entries is the committed entry count persisted (0 for duplicates).
	Entries int
}

// Store is the profile history store over one directory. All methods are
// safe for concurrent use; mutations (ingest, compaction) serialize, reads
// snapshot.
type Store struct {
	dir string
	opt Options
	inj *faultinject.Injector

	// wmu serializes mutations end to end (table write → manifest commit →
	// state swap); mu guards the in-memory view readers snapshot.
	wmu sync.Mutex
	mu  sync.RWMutex

	man     *manifest
	tables  map[uint64]*Table
	retired []*Table // compacted-away readers, closed at Close (snapshots may still read them)
	syms    map[string]symtab.Symbol
	tab     *symtab.Table
	report  OpenReport
	closed  bool

	compactions uint64
	cache       *blockCache

	crun  bool
	cstop chan struct{}
	cdone chan struct{}
}

// Open loads (or initializes) the store in dir: resolve the committed
// manifest (falling back past a torn CURRENT), validate every referenced
// table, sweep uncommitted leftovers, and load the symbol union. The
// repairs performed are available via Report.
func Open(dir string, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man, rep, err := readCurrent(dir)
	if err != nil {
		return nil, err
	}

	s := &Store{
		dir:    dir,
		opt:    opt,
		inj:    opt.Injector,
		man:    man,
		tables: make(map[uint64]*Table, len(man.Tables)),
		syms:   make(map[string]symtab.Symbol),
		report: *rep,
		cache:  newBlockCache(opt.CacheBlocks),
	}

	// Validate every referenced table; drop (and report) what fails.
	live := man.Tables[:0]
	for _, tm := range man.Tables {
		t, terr := OpenTable(filepath.Join(dir, tm.File))
		if terr == nil && t.Info() != tm.info() {
			t.Close()
			terr = fmt.Errorf("%w: footer does not match manifest", ErrBadTable)
		}
		if terr != nil {
			s.report.DroppedTables = append(s.report.DroppedTables,
				fmt.Sprintf("%s: %v", tm.File, terr))
			continue
		}
		s.tables[tm.Seq] = t
		live = append(live, tm)
	}
	man.Tables = live

	s.sweep()
	s.loadSyms()
	return s, nil
}

// sweep removes uncommitted leftovers: .tmp files, table files the
// committed manifest does not reference, and manifests other than the
// committed one. Everything removed is reported.
func (s *Store) sweep() {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	referenced := make(map[string]bool, len(s.man.Tables))
	for _, tm := range s.man.Tables {
		referenced[tm.File] = true
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case e.IsDir():
		case strings.HasSuffix(name, ".tmp"):
			if os.Remove(filepath.Join(s.dir, name)) == nil {
				s.report.SweptTemp = append(s.report.SweptTemp, name)
			}
		case strings.HasPrefix(name, "tbl-") && !referenced[name]:
			if os.Remove(filepath.Join(s.dir, name)) == nil {
				s.report.SweptOrphans = append(s.report.SweptOrphans, name)
			}
		default:
			if seq, ok := manifestSeq(name); ok && (s.man.Seq == 0 || seq != s.man.Seq) {
				if os.Remove(filepath.Join(s.dir, name)) == nil {
					s.report.SweptManifests = append(s.report.SweptManifests, name)
				}
			}
		}
	}
}

// loadSyms loads the store-wide symbol union (absence is normal).
func (s *Store) loadSyms() {
	data, err := os.ReadFile(filepath.Join(s.dir, symsName))
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		s.report.SymsError = err.Error()
		return
	}
	tab, err := symtab.Read(bytes.NewReader(data))
	if err != nil {
		s.report.SymsError = err.Error()
		return
	}
	s.tab = tab
	for _, sym := range tab.Symbols() {
		s.syms[sym.Name] = sym
	}
}

// Report returns the structured account of what open repaired.
func (s *Store) Report() OpenReport {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.report
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Segments returns every acknowledged segment ID mapped to the table seq
// currently holding its entries.
func (s *Store) Segments() map[string]uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.man.segments()
}

// Bounds returns the counter window covered by the store (ok=false when it
// holds no entries).
func (s *Store) Bounds() (min, max uint64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, tm := range s.man.Tables {
		if tm.Entries == 0 {
			continue
		}
		if !ok || tm.MinCounter < min {
			min = tm.MinCounter
		}
		if !ok || tm.MaxCounter > max {
			max = tm.MaxCounter
		}
		ok = true
	}
	return min, max, ok
}

// Tables returns the live table records, sorted by (MinCounter, Seq).
func (s *Store) Tables() []TableMeta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]TableMeta, len(s.man.Tables))
	copy(out, s.man.Tables)
	sortTables(out)
	return out
}

// sortTables orders table records by (MinCounter, Seq): time-window order
// with ingestion order breaking ties, the merge order both compaction and
// queries use.
func sortTables(tms []TableMeta) {
	sort.Slice(tms, func(i, j int) bool {
		if tms[i].MinCounter != tms[j].MinCounter {
			return tms[i].MinCounter < tms[j].MinCounter
		}
		return tms[i].Seq < tms[j].Seq
	})
}

// Stats snapshots the store gauges.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Tables:      len(s.man.Tables),
		Segments:    len(s.man.segments()),
		Compactions: s.compactions,
		Backlog:     s.backlogLocked(),
	}
	maxLevel := -1
	for _, tm := range s.man.Tables {
		st.Entries += tm.Entries
		if tm.Level > maxLevel {
			maxLevel = tm.Level
		}
	}
	st.Levels = maxLevel + 1
	st.CacheLen, st.CacheCap, st.CacheHits, st.CacheMisses = s.cache.stats()
	return st
}

// IngestLog persists one finished segment's committed entries as a new L0
// table and acknowledges it under segmentID. Ingesting an acknowledged ID
// again is a reported no-op (exactly-once), so replaying a spool after a
// crash is safe. tab may be nil (agent-salvaged sessions without a symbol
// side file); addresses then render as hex in query output.
//
// The return is an acknowledgment: when err is nil the segment is durably
// committed (CURRENT repointed). A kill anywhere before that leaves the
// previous state committed and this segment un-acknowledged.
func (s *Store) IngestLog(log *shmlog.Log, tab *symtab.Table, segmentID string) (IngestResult, error) {
	if log == nil {
		return IngestResult{}, fmt.Errorf("profilestore: nil log")
	}
	if segmentID == "" {
		return IngestResult{}, fmt.Errorf("profilestore: empty segment ID")
	}
	entries := log.CommittedEntries()
	// Stable sort by counter: blocks must be counter-ordered for the index
	// to prune windows. Per-thread order — the analyzer's only ordering
	// dependency — survives because each thread's counters are
	// nondecreasing in reader order.
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Counter < entries[j].Counter })

	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.isClosed() {
		return IngestResult{}, fmt.Errorf("profilestore: store closed")
	}
	if seq, ok := s.Segments()[segmentID]; ok {
		return IngestResult{Segment: segmentID, Duplicate: true, TableSeq: seq}, nil
	}

	seq := s.man.NextTable
	meta := TableMeta{
		File:         tableName(seq),
		Seq:          seq,
		Level:        0,
		PID:          log.PID(),
		ProfilerAddr: log.ProfilerAddr(),
		SamplePeriod: normPeriod(log.SamplePeriod()),
		Segments:     []string{segmentID},
	}
	info, err := writeTable(filepath.Join(s.dir, meta.File), entries,
		meta.PID, meta.ProfilerAddr, meta.SamplePeriod, s.opt.BlockEntries, s.inj)
	if err != nil {
		return IngestResult{}, fmt.Errorf("profilestore: write table: %w", err)
	}
	meta.Entries = info.Entries
	meta.MinCounter = info.MinCounter
	meta.MaxCounter = info.MaxCounter

	if err := s.mergeSyms(tab); err != nil {
		os.Remove(filepath.Join(s.dir, meta.File))
		return IngestResult{}, fmt.Errorf("profilestore: persist symbols: %w", err)
	}

	next := s.cloneManifest()
	next.Seq++
	next.NextTable++
	next.Tables = append(next.Tables, meta)
	if err := writeManifest(s.dir, next, s.inj); err != nil {
		os.Remove(filepath.Join(s.dir, meta.File))
		return IngestResult{}, fmt.Errorf("profilestore: commit manifest: %w", err)
	}

	reader, err := OpenTable(filepath.Join(s.dir, meta.File))
	if err != nil {
		// Committed but unreadable: surface it rather than hold broken state.
		return IngestResult{}, fmt.Errorf("profilestore: reopen committed table: %w", err)
	}
	prevSeq := s.swapState(next, map[uint64]*Table{seq: reader}, nil)
	s.gc(prevSeq, nil)
	return IngestResult{Segment: segmentID, TableSeq: seq, Entries: len(entries)}, nil
}

// IngestBundle reads a profile bundle (a rotated/checkpointed segment as
// recorder.PersistSegment writes it) and ingests it under segmentID; an
// empty segmentID defaults to the file's basename.
func (s *Store) IngestBundle(path, segmentID string) (IngestResult, error) {
	if segmentID == "" {
		segmentID = filepath.Base(path)
	}
	tab, log, err := recorder.ReadBundleFile(path)
	if err != nil {
		return IngestResult{}, err
	}
	return s.IngestLog(log, tab, segmentID)
}

// normPeriod maps the header's 0 (never set) to the analyzer's 1.
func normPeriod(p uint64) uint64 {
	if p == 0 {
		return 1
	}
	return p
}

// cloneManifest deep-copies the committed manifest for mutation.
func (s *Store) cloneManifest() *manifest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	next := &manifest{
		Format:    s.man.Format,
		Seq:       s.man.Seq,
		NextTable: s.man.NextTable,
		Tables:    make([]TableMeta, len(s.man.Tables)),
	}
	copy(next.Tables, s.man.Tables)
	return next
}

// swapState installs the committed manifest and table-reader changes,
// returning the previous manifest seq (for GC). Readers holding snapshots
// of retired tables keep their open file handles; the files themselves may
// be unlinked underneath them, which POSIX allows.
func (s *Store) swapState(next *manifest, add map[uint64]*Table, retire []uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.man.Seq
	s.man = next
	for seq, t := range add {
		s.tables[seq] = t
	}
	for _, seq := range retire {
		if t, ok := s.tables[seq]; ok {
			s.retired = append(s.retired, t)
			delete(s.tables, seq)
		}
		s.cache.drop(seq)
	}
	return prev
}

// gc removes files superseded by a commit: the previous manifest and any
// compacted-away tables. Best effort — a kill here leaves orphans the next
// open sweeps (and reports); an injected failure skips the pass.
func (s *Store) gc(prevManifestSeq uint64, tableFiles []string) {
	if err := s.inj.Hit(faultinject.StoreGC); err != nil {
		return
	}
	if prevManifestSeq != 0 {
		os.Remove(filepath.Join(s.dir, manifestName(prevManifestSeq)))
	}
	for _, f := range tableFiles {
		os.Remove(filepath.Join(s.dir, f))
	}
}

// mergeSyms folds tab's symbols into the store union and, when anything
// new arrived, durably rewrites the side file (tmp→fsync→rename) before
// the manifest commit that will reference the addresses.
func (s *Store) mergeSyms(tab *symtab.Table) error {
	if tab == nil {
		return nil
	}
	changed := false
	for _, sym := range tab.Symbols() {
		if _, ok := s.syms[sym.Name]; !ok {
			s.syms[sym.Name] = sym
			changed = true
		}
	}
	if !changed {
		return nil
	}
	list := make([]symtab.Symbol, 0, len(s.syms))
	for _, sym := range s.syms {
		list = append(list, sym)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].Addr != list[j].Addr {
			return list[i].Addr < list[j].Addr
		}
		return list[i].Name < list[j].Name
	})
	var buf bytes.Buffer
	buf.WriteString("TEESYM1\n")
	for _, sym := range list {
		fmt.Fprintf(&buf, "%x\t%d\t%s:%d\t%s\n", sym.Addr, sym.Size, sym.File, sym.Line, sym.Name)
	}
	merged, err := symtab.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}

	tmp := filepath.Join(s.dir, symsName+".tmp")
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	if err := syncFile(tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, symsName)); err != nil {
		os.Remove(tmp)
		return err
	}
	s.mu.Lock()
	s.tab = merged
	s.mu.Unlock()
	return nil
}

// readBlock serves one block through the LRU cache.
func (s *Store) readBlock(t *Table, seq uint64, i int) ([]shmlog.Entry, error) {
	if blk, ok := s.cache.get(seq, i); ok {
		return blk, nil
	}
	blk, err := t.ReadBlock(i)
	if err != nil {
		return nil, err
	}
	s.cache.put(seq, i, blk)
	return blk, nil
}

func (s *Store) isClosed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// Close stops the background compactor and releases every table reader.
func (s *Store) Close() error {
	s.StopCompactor()
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for _, t := range s.tables {
		t.Close()
	}
	for _, t := range s.retired {
		t.Close()
	}
	return nil
}
