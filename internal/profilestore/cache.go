package profilestore

import (
	"container/list"
	"sync"
	"sync/atomic"

	"teeperf/internal/shmlog"
)

// blockCache is a bounded LRU over decoded blocks, keyed by (table seq,
// block index). Table seqs are never reused, so an entry can go stale only
// by its table being compacted away — it then simply ages out. Capacity is
// counted in blocks, not bytes: blocks are fixed-size by construction, so
// the two are proportional.
type blockCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List
	m   map[cacheKey]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheKey struct {
	table uint64
	block int
}

type cacheItem struct {
	key     cacheKey
	entries []shmlog.Entry
}

func newBlockCache(capBlocks int) *blockCache {
	return &blockCache{
		cap: capBlocks,
		ll:  list.New(),
		m:   make(map[cacheKey]*list.Element, capBlocks),
	}
}

// get returns the cached block and records a hit/miss.
func (c *blockCache) get(table uint64, block int) ([]shmlog.Entry, bool) {
	key := cacheKey{table, block}
	c.mu.Lock()
	el, ok := c.m[key]
	if ok {
		c.ll.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*cacheItem).entries, true
}

// put inserts a decoded block, evicting from the cold end past capacity.
func (c *blockCache) put(table uint64, block int, entries []shmlog.Entry) {
	if c.cap <= 0 {
		return
	}
	key := cacheKey{table, block}
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheItem).entries = entries
	} else {
		c.m[key] = c.ll.PushFront(&cacheItem{key: key, entries: entries})
		for c.ll.Len() > c.cap {
			cold := c.ll.Back()
			c.ll.Remove(cold)
			delete(c.m, cold.Value.(*cacheItem).key)
		}
	}
	c.mu.Unlock()
}

// drop evicts every block of one table (called when compaction retires it).
func (c *blockCache) drop(table uint64) {
	c.mu.Lock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if it := el.Value.(*cacheItem); it.key.table == table {
			c.ll.Remove(el)
			delete(c.m, it.key)
		}
		el = next
	}
	c.mu.Unlock()
}

// stats returns (len, cap, hits, misses).
func (c *blockCache) stats() (int, int, uint64, uint64) {
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return n, c.cap, c.hits.Load(), c.misses.Load()
}
