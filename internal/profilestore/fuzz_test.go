package profilestore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"teeperf/internal/faultinject"
	"teeperf/internal/shmlog"
)

// fuzzTableBytes writes one small valid table and returns its bytes, the
// interesting seed for the table-reader fuzzer.
func fuzzTableBytes(tb testing.TB) []byte {
	path := filepath.Join(tb.(interface{ TempDir() string }).TempDir(), "seed.tpt")
	entries := []shmlog.Entry{
		{Kind: shmlog.KindCall, Counter: 1, Addr: 0x400010, ThreadID: 7},
		{Kind: shmlog.KindReturn, Counter: 4, Addr: 0x400010, ThreadID: 7},
		{Kind: shmlog.KindCall, Counter: 5, Addr: 0x400020, ThreadID: 8},
		{Kind: shmlog.KindReturn, Counter: 9, Addr: 0x400020, ThreadID: 8},
	}
	if _, err := writeTable(path, entries, 4242, 0x400000, 1, 2, faultinject.New(0)); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzTableRead hammers the table reader with arbitrary bytes: it must
// either reject the input or serve blocks without panics or unbounded
// allocation (every offset is validated against the input size before use).
func FuzzTableRead(f *testing.F) {
	seed := fuzzTableBytes(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte(tableMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := OpenTableReaderAt(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		// A table that validates must serve (or cleanly reject) every block.
		for i := 0; i < tbl.Blocks(); i++ {
			blk, err := tbl.ReadBlock(i)
			if err != nil {
				continue
			}
			for _, e := range blk {
				_ = tbl.HasTID(e.ThreadID)
			}
		}
	})
}

// FuzzManifestRead hammers the manifest decoder: arbitrary bytes either
// fail, or decode into a manifest whose re-encoding round-trips.
func FuzzManifestRead(f *testing.F) {
	valid, err := encodeManifest(&manifest{
		Format:    manifestFormat,
		Seq:       3,
		NextTable: 2,
		Tables: []TableMeta{{
			File: tableName(1), Seq: 1, Level: 0, Entries: 4,
			MinCounter: 1, MaxCounter: 9, PID: 4242, SamplePeriod: 1,
			Segments: []string{"seg-0"},
		}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(manifestMagic))
	f.Add([]byte("TEEPSTM1 00000000\n{}"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		re, err := encodeManifest(m)
		if err != nil {
			t.Fatalf("decoded manifest failed to re-encode: %v", err)
		}
		m2, err := decodeManifest(re)
		if err != nil {
			t.Fatalf("re-encoded manifest failed to decode: %v", err)
		}
		if m2.Seq != m.Seq || m2.NextTable != m.NextTable || len(m2.Tables) != len(m.Tables) {
			t.Fatalf("manifest round trip diverged: %+v vs %+v", m, m2)
		}
	})
}
