package profilestore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"teeperf/internal/shmlog"
)

// Leveled compaction policy: fresh ingests land at level 0. When one
// session shape (same PID, profiler address and sampling period — entries
// of different shapes cannot merge, their addresses and weights mean
// different things) accumulates Fanout tables at a level, the Fanout
// oldest-by-window merge into one table at the next level. Each step
// multiplies table size by Fanout and divides table count likewise, so N
// ingests settle into O(log_Fanout N) tables while every merge stays
// bounded.
//
// The merge itself is the conformance-critical step: inputs are taken in
// (MinCounter, Seq) order and their entries stable-sorted by counter, so
// entries with equal counters keep earlier-table-first order. Each
// thread's entries already appear in counter order within one table, and a
// thread's later-rotation entries never precede its earlier-rotation ones
// (the software counter carries across rotations), so the merged table
// preserves per-thread order — folded analyzer output is byte-identical
// before and after any number of compaction steps.

// sessionShape groups tables that may merge.
type sessionShape struct {
	pid, profilerAddr, samplePeriod uint64
}

func shapeOf(tm TableMeta) sessionShape {
	return sessionShape{tm.PID, tm.ProfilerAddr, tm.SamplePeriod}
}

// pickCompaction selects one eligible merge under the leveled policy: the
// lowest level of any shape holding at least Fanout tables, taking the
// Fanout oldest tables by window order. Returns nil when nothing is
// eligible.
func (s *Store) pickCompaction() []TableMeta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	groups := make(map[sessionShape]map[int][]TableMeta)
	for _, tm := range s.man.Tables {
		g, ok := groups[shapeOf(tm)]
		if !ok {
			g = make(map[int][]TableMeta)
			groups[shapeOf(tm)] = g
		}
		g[tm.Level] = append(g[tm.Level], tm)
	}
	var best []TableMeta
	bestLevel := -1
	for _, g := range groups {
		for level, tms := range g {
			if len(tms) < s.opt.Fanout {
				continue
			}
			if bestLevel == -1 || level < bestLevel {
				sortTables(tms)
				best = tms[:s.opt.Fanout]
				bestLevel = level
			}
		}
	}
	return best
}

// backlogLocked counts tables currently eligible as compaction inputs
// (levels at or past the fanout trigger). Callers hold mu.
func (s *Store) backlogLocked() int {
	counts := make(map[sessionShape]map[int]int)
	for _, tm := range s.man.Tables {
		g, ok := counts[shapeOf(tm)]
		if !ok {
			g = make(map[int]int)
			counts[shapeOf(tm)] = g
		}
		g[tm.Level]++
	}
	backlog := 0
	for _, g := range counts {
		for _, n := range g {
			if n >= s.opt.Fanout {
				backlog += n
			}
		}
	}
	return backlog
}

// MaybeCompact runs at most one leveled compaction step, reporting whether
// one ran. The background compactor calls this in a loop; tests call it to
// reach mid-compaction states.
func (s *Store) MaybeCompact() (bool, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.isClosed() {
		return false, fmt.Errorf("profilestore: store closed")
	}
	inputs := s.pickCompaction()
	if inputs == nil {
		return false, nil
	}
	maxLevel := 0
	for _, tm := range inputs {
		if tm.Level > maxLevel {
			maxLevel = tm.Level
		}
	}
	if err := s.mergeLocked(inputs, maxLevel+1); err != nil {
		return false, err
	}
	return true, nil
}

// Compact merges every shape's tables down to a single table (full
// compaction), regardless of the fanout trigger.
func (s *Store) Compact() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.isClosed() {
		return fmt.Errorf("profilestore: store closed")
	}
	for {
		byShape := make(map[sessionShape][]TableMeta)
		s.mu.RLock()
		for _, tm := range s.man.Tables {
			byShape[shapeOf(tm)] = append(byShape[shapeOf(tm)], tm)
		}
		s.mu.RUnlock()
		var inputs []TableMeta
		maxLevel := 0
		for _, tms := range byShape {
			if len(tms) < 2 {
				continue
			}
			sortTables(tms)
			inputs = tms
			for _, tm := range tms {
				if tm.Level > maxLevel {
					maxLevel = tm.Level
				}
			}
			break
		}
		if inputs == nil {
			return nil
		}
		if err := s.mergeLocked(inputs, maxLevel+1); err != nil {
			return err
		}
	}
}

// mergeLocked merges the input tables into one output table at outLevel and
// commits the swap. Caller holds wmu. Inputs must be window-sorted and of
// one shape.
func (s *Store) mergeLocked(inputs []TableMeta, outLevel int) error {
	shape := shapeOf(inputs[0])
	var entries []shmlog.Entry
	var segments []string
	s.mu.RLock()
	readers := make([]*Table, len(inputs))
	for i, tm := range inputs {
		if shapeOf(tm) != shape {
			s.mu.RUnlock()
			return fmt.Errorf("profilestore: merging mixed session shapes")
		}
		readers[i] = s.tables[tm.Seq]
	}
	s.mu.RUnlock()
	for i, tm := range inputs {
		t := readers[i]
		if t == nil {
			return fmt.Errorf("profilestore: table %d has no open reader", tm.Seq)
		}
		for b := 0; b < t.Blocks(); b++ {
			blk, err := s.readBlock(t, tm.Seq, b)
			if err != nil {
				return err
			}
			entries = append(entries, blk...)
		}
		segments = append(segments, tm.Segments...)
	}
	// Inputs are concatenated in (MinCounter, Seq) order; the stable sort
	// keeps that order among equal counters (the earlier-table tie-break).
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Counter < entries[j].Counter })
	sort.Strings(segments)

	seq := s.man.NextTable
	meta := TableMeta{
		File:         tableName(seq),
		Seq:          seq,
		Level:        outLevel,
		PID:          shape.pid,
		ProfilerAddr: shape.profilerAddr,
		SamplePeriod: shape.samplePeriod,
		Segments:     segments,
	}
	info, err := writeTable(filepath.Join(s.dir, meta.File), entries,
		meta.PID, meta.ProfilerAddr, meta.SamplePeriod, s.opt.BlockEntries, s.inj)
	if err != nil {
		return fmt.Errorf("profilestore: write merged table: %w", err)
	}
	meta.Entries = info.Entries
	meta.MinCounter = info.MinCounter
	meta.MaxCounter = info.MaxCounter

	drop := make(map[uint64]bool, len(inputs))
	var dropFiles []string
	var retire []uint64
	for _, tm := range inputs {
		drop[tm.Seq] = true
		dropFiles = append(dropFiles, tm.File)
		retire = append(retire, tm.Seq)
	}
	next := s.cloneManifest()
	next.Seq++
	next.NextTable++
	live := next.Tables[:0]
	for _, tm := range next.Tables {
		if !drop[tm.Seq] {
			live = append(live, tm)
		}
	}
	next.Tables = append(live, meta)
	if err := writeManifest(s.dir, next, s.inj); err != nil {
		os.Remove(filepath.Join(s.dir, meta.File))
		return fmt.Errorf("profilestore: commit merged manifest: %w", err)
	}

	reader, err := OpenTable(filepath.Join(s.dir, meta.File))
	if err != nil {
		return fmt.Errorf("profilestore: reopen merged table: %w", err)
	}
	prevSeq := s.swapState(next, map[uint64]*Table{seq: reader}, retire)
	s.mu.Lock()
	s.compactions++
	s.mu.Unlock()
	s.gc(prevSeq, dropFiles)
	return nil
}

// StartCompactor launches a background loop running one compaction step
// per interval while any is eligible. No-op when already running.
func (s *Store) StartCompactor(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crun || s.closed {
		return
	}
	s.crun = true
	s.cstop = make(chan struct{})
	s.cdone = make(chan struct{})
	go s.compactLoop(interval, s.cstop, s.cdone)
}

func (s *Store) compactLoop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			// Drain the backlog: keep stepping until nothing is eligible,
			// so a burst of ingests settles within one tick.
			for {
				ran, err := s.MaybeCompact()
				if err != nil || !ran {
					break
				}
			}
		}
	}
}

// StopCompactor halts the background loop; idempotent.
func (s *Store) StopCompactor() {
	s.mu.Lock()
	if !s.crun {
		s.mu.Unlock()
		return
	}
	s.crun = false
	stop, done := s.cstop, s.cdone
	s.mu.Unlock()
	close(stop)
	<-done
}
