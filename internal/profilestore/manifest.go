package profilestore

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"teeperf/internal/faultinject"
)

// Manifest protocol (LevelDB-style): the store's durable state is one
// MANIFEST-<seq> file naming every live table, and a CURRENT file holding
// the name of the committed manifest. Every mutation writes a complete new
// manifest (tmp→fsync→rename), then repoints CURRENT (tmp→fsync→rename).
// The CURRENT rename is the commit point: a segment is acknowledged only
// after it lands, so a kill anywhere earlier leaves the previous manifest
// committed, the new files orphaned, and the segment un-acknowledged —
// exactly-once follows from re-ingesting anything not acknowledged.
//
// On-disk encoding: one header line "TEEPSTM1 <crc32c-hex>" followed by
// the JSON body the CRC covers, so a torn manifest is detected without
// trusting any of its content.

const (
	manifestMagic  = "TEEPSTM1"
	manifestFormat = 1
	currentName    = "CURRENT"
)

// ErrBadManifest is returned when a manifest file fails validation.
var ErrBadManifest = errors.New("profilestore: bad manifest")

// TableMeta is one live table's manifest record. The footer-derived fields
// duplicate the table file's own footer; open cross-checks them so a
// manifest pointing at a recycled or swapped file is caught.
type TableMeta struct {
	File         string   `json:"file"`
	Seq          uint64   `json:"seq"`
	Level        int      `json:"level"`
	Entries      uint64   `json:"entries"`
	MinCounter   uint64   `json:"min_counter"`
	MaxCounter   uint64   `json:"max_counter"`
	PID          uint64   `json:"pid"`
	ProfilerAddr uint64   `json:"profiler_addr"`
	SamplePeriod uint64   `json:"sample_period"`
	Segments     []string `json:"segments"`
}

func (m TableMeta) info() tableInfo {
	return tableInfo{
		Entries:      m.Entries,
		MinCounter:   m.MinCounter,
		MaxCounter:   m.MaxCounter,
		PID:          m.PID,
		ProfilerAddr: m.ProfilerAddr,
		SamplePeriod: m.SamplePeriod,
	}
}

// manifest is the store's durable state.
type manifest struct {
	Format    int         `json:"format"`
	Seq       uint64      `json:"seq"`
	NextTable uint64      `json:"next_table"`
	Tables    []TableMeta `json:"tables"`
}

// segments returns every acknowledged segment ID, mapped to the table seq
// currently holding it.
func (m *manifest) segments() map[string]uint64 {
	out := make(map[string]uint64)
	for _, t := range m.Tables {
		for _, s := range t.Segments {
			out[s] = t.Seq
		}
	}
	return out
}

func manifestName(seq uint64) string { return fmt.Sprintf("MANIFEST-%06d", seq) }

func tableName(seq uint64) string { return fmt.Sprintf("tbl-%06d.tpt", seq) }

// manifestSeq parses a MANIFEST-<seq> basename, reporting ok=false for
// anything else.
func manifestSeq(name string) (uint64, bool) {
	rest, found := strings.CutPrefix(name, "MANIFEST-")
	if !found {
		return 0, false
	}
	seq, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// encodeManifest renders the header+JSON encoding.
func encodeManifest(m *manifest) ([]byte, error) {
	body, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	head := fmt.Sprintf("%s %08x\n", manifestMagic, crc32.Checksum(body, crcTable))
	return append([]byte(head), body...), nil
}

// decodeManifest validates and decodes a manifest encoding. It trusts
// nothing before the header CRC matches the body, so torn or bit-flipped
// manifests fail here and open falls back to an older one.
func decodeManifest(data []byte) (*manifest, error) {
	nl := -1
	for i, b := range data {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, fmt.Errorf("%w: no header line", ErrBadManifest)
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 2 || fields[0] != manifestMagic {
		return nil, fmt.Errorf("%w: bad header", ErrBadManifest)
	}
	want, err := strconv.ParseUint(fields[1], 16, 32)
	if err != nil {
		return nil, fmt.Errorf("%w: bad header CRC field", ErrBadManifest)
	}
	body := data[nl+1:]
	if crc32.Checksum(body, crcTable) != uint32(want) {
		return nil, fmt.Errorf("%w: CRC mismatch (torn file)", ErrBadManifest)
	}
	var m manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("%w: unsupported format %d", ErrBadManifest, m.Format)
	}
	seen := make(map[uint64]bool, len(m.Tables))
	for _, t := range m.Tables {
		if t.File != tableName(t.Seq) || seen[t.Seq] || t.Seq >= m.NextTable ||
			t.Level < 0 || t.MaxCounter < t.MinCounter {
			return nil, fmt.Errorf("%w: inconsistent table record %q", ErrBadManifest, t.File)
		}
		seen[t.Seq] = true
	}
	return &m, nil
}

// writeManifest durably writes MANIFEST-<m.Seq> into dir (tmp→fsync→
// rename) and then commits it by atomically repointing CURRENT. The
// injector's store points bracket every step so the crash matrix can kill
// between any two of them.
func writeManifest(dir string, m *manifest, inj *faultinject.Injector) error {
	data, err := encodeManifest(m)
	if err != nil {
		return err
	}
	name := manifestName(m.Seq)
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := inj.Writer(f, faultinject.StoreManifestWrite).Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := inj.Hit(faultinject.StoreManifestSync); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}

	// Commit: repoint CURRENT through its own atomic rename.
	ctmp := filepath.Join(dir, currentName+".tmp")
	if err := os.WriteFile(ctmp, []byte(name+"\n"), 0o644); err != nil {
		return err
	}
	if err := syncFile(ctmp); err != nil {
		os.Remove(ctmp)
		return err
	}
	if err := inj.Hit(faultinject.StoreCurrentRename); err != nil {
		os.Remove(ctmp)
		return err
	}
	if err := os.Rename(ctmp, filepath.Join(dir, currentName)); err != nil {
		os.Remove(ctmp)
		return err
	}
	syncDir(dir)
	return nil
}

// readCurrent resolves the committed manifest: the one CURRENT names, or —
// when CURRENT is missing, torn, or dangling — the highest-seq manifest
// that still validates. The fallback is reported, never silent.
func readCurrent(dir string) (*manifest, *OpenReport, error) {
	rep := &OpenReport{}
	if data, err := os.ReadFile(filepath.Join(dir, currentName)); err == nil {
		name := strings.TrimSpace(string(data))
		if seq, ok := manifestSeq(name); ok {
			m, merr := loadManifest(filepath.Join(dir, name))
			if merr == nil {
				if m.Seq != seq {
					rep.Corruption = append(rep.Corruption,
						fmt.Sprintf("%s: seq %d does not match its name", name, m.Seq))
				} else {
					rep.ManifestSeq = m.Seq
					return m, rep, nil
				}
			} else {
				rep.Corruption = append(rep.Corruption, fmt.Sprintf("%s: %v", name, merr))
			}
		} else {
			rep.Corruption = append(rep.Corruption, fmt.Sprintf("CURRENT names %q", name))
		}
		rep.CurrentFallback = true
	} else if !os.IsNotExist(err) {
		return nil, rep, err
	}

	// Fallback: newest manifest on disk that validates.
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, rep, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := manifestSeq(e.Name()); ok && !e.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs {
		name := manifestName(seq)
		m, merr := loadManifest(filepath.Join(dir, name))
		if merr != nil || m.Seq != seq {
			rep.Corruption = append(rep.Corruption, fmt.Sprintf("%s: %v", name, merr))
			continue
		}
		rep.CurrentFallback = true
		rep.ManifestSeq = m.Seq
		return m, rep, nil
	}

	// Fresh store (or every manifest torn — the sweep reports any table
	// files left behind as orphans).
	return &manifest{Format: manifestFormat}, rep, nil
}

func loadManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeManifest(data)
}

func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir best-effort fsyncs a directory so renames are durable; some
// filesystems refuse, which is not worth failing a commit over.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		_ = f.Sync()
		_ = f.Close()
	}
}
