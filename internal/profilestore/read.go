package profilestore

import (
	"errors"
	"fmt"
	"sort"

	"teeperf/internal/analyzer"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// ErrMixedSessions is returned when a query window spans tables of
// different session shapes (PID, profiler address or sampling period):
// their addresses and weights are not comparable, so the store refuses to
// fold them together rather than produce a silently wrong profile.
var ErrMixedSessions = errors.New("profilestore: window spans mixed session shapes")

// FullWindow selects the store's whole history in Profile/Diff calls.
const FullWindow = ^uint64(0)

// AllThreads selects every thread in Profile/Diff calls.
const AllThreads = uint64(0)

// Profile answers a time-travel query: the analyzer profile of thread tid
// (AllThreads for every thread) restricted to the counter window
// [from, to]. Only blocks whose counter bounds overlap the window are read
// (through the LRU cache); the selected entries are merged across tables
// in (window, ingestion) order and handed to the analyzer through an
// in-memory log, so the result is exactly what an offline Analyze of the
// matching slice of the original recording would produce.
func (s *Store) Profile(tid, from, to uint64) (*analyzer.Profile, error) {
	if from > to {
		return nil, fmt.Errorf("profilestore: window [%d, %d] is inverted", from, to)
	}
	s.mu.RLock()
	tms := make([]TableMeta, len(s.man.Tables))
	copy(tms, s.man.Tables)
	readers := make(map[uint64]*Table, len(s.tables))
	for seq, t := range s.tables {
		readers[seq] = t
	}
	tab := s.tab
	s.mu.RUnlock()
	sortTables(tms)

	var (
		selected []TableMeta
		shape    sessionShape
		haveAny  bool
	)
	for _, tm := range tms {
		if tm.Entries == 0 || tm.MinCounter > to || tm.MaxCounter < from {
			continue
		}
		if tid != AllThreads {
			if t := readers[tm.Seq]; t != nil && !t.HasTID(tid) {
				continue
			}
		}
		if !haveAny {
			shape = shapeOf(tm)
			haveAny = true
		} else if shapeOf(tm) != shape {
			return nil, fmt.Errorf("%w: [%d, %d]", ErrMixedSessions, from, to)
		}
		selected = append(selected, tm)
	}

	var entries []shmlog.Entry
	for _, tm := range selected {
		t := readers[tm.Seq]
		if t == nil {
			return nil, fmt.Errorf("profilestore: table %d has no open reader", tm.Seq)
		}
		for b := 0; b < t.Blocks(); b++ {
			min, max := t.blocks[b].minCounter, t.blocks[b].maxCounter
			if min > to || max < from {
				continue
			}
			blk, err := s.readBlock(t, tm.Seq, b)
			if err != nil {
				return nil, err
			}
			for _, e := range blk {
				if e.Counter < from || e.Counter > to {
					continue
				}
				if tid != AllThreads && e.ThreadID != tid {
					continue
				}
				entries = append(entries, e)
			}
		}
	}
	// Tables were visited in (MinCounter, Seq) order; the stable sort
	// merges them by counter with that order breaking ties, preserving
	// per-thread sequences (see the compaction commentary).
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Counter < entries[j].Counter })

	log := shmlog.FromEntries(entries, shape.pid, shape.profilerAddr, shape.samplePeriod)
	if tab == nil {
		tab = symtab.New()
	}
	return analyzer.Analyze(log, tab)
}

// Diff answers a differential query: the profile of window A versus window
// B (same thread filter), as per-function share deltas sorted by absolute
// change. The two profiles are also returned for rendering (differential
// flame graphs, tables).
func (s *Store) Diff(tid, fromA, toA, fromB, toB uint64) (*analyzer.Profile, *analyzer.Profile, []analyzer.DiffRow, error) {
	pa, err := s.Profile(tid, fromA, toA)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("window A: %w", err)
	}
	pb, err := s.Profile(tid, fromB, toB)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("window B: %w", err)
	}
	return pa, pb, analyzer.Diff(pa, pb), nil
}
