// Package profilestore is the profile history store: finished segments
// (rotated, checkpointed, or agent-salvaged recordings) are ingested as
// immutable, block-indexed table files behind a manifest with atomic-rename
// updates, a leveled compactor merges adjacent time windows into coarser
// tables, and a bounded LRU block cache serves reads. On top of the stored
// entries it answers time-travel queries ("profile of thread X between t1
// and t2") and differential queries (A-vs-B folded diffs) through the
// analyzer, so the paper's one-shot Fig 5/6 flame graphs become a queryable
// history (TEEMon's continuous-monitoring stance).
//
// The conformance contract is exact, not approximate: the store persists
// raw committed entries (not pre-folded aggregates), ingestion stable-sorts
// them by the global counter, and compaction merges tables with an
// earlier-table tie-break — all order transformations that preserve each
// thread's entry sequence, which is the only thing the analyzer's stack
// reconstruction depends on. Store.Profile over the full window therefore
// folds byte-identically to an offline Analyze of the concatenated source
// segments, at every compaction state. The property and crash tests in
// this package enforce that contract.
package profilestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"teeperf/internal/faultinject"
	"teeperf/internal/shmlog"
)

// Table file layout (all integers little-endian):
//
//	header   8 bytes  magic "TEEPSTB1"
//	blocks   repeated: count*24 bytes of entries (w0|addr|tid), 4-byte CRC32
//	index    blockCount * 24 bytes: offset u64, count u32, pad u32 (reserved,
//	         zero), minCounter u64 — maxCounter is the next block's min (or
//	         the footer's) so the index stays one cache line per two blocks
//	tids     u32 count (0xFFFFFFFF = unknown, check every block), then
//	         count * 8 bytes of sorted distinct thread IDs
//	footer   fixed 84 bytes: indexOff u64, tidsOff u64, blockCount u32,
//	         blockEntries u32, entryCount u64, minCounter u64, maxCounter
//	         u64, pid u64, profilerAddr u64, samplePeriod u64, CRC32 of the
//	         preceding 72 footer bytes, tail magic "TEEPSTB1"
//
// A reader trusts nothing before the footer parses: tail magic, then footer
// CRC, then bounds-checked offsets, then per-block CRCs on access. A torn
// or bit-flipped table is detected at open or at block read, never folded.

const (
	tableMagic = "TEEPSTB1"

	entryBytes  = 24
	footerBytes = 84
	indexSlot   = 24

	// tidListCap bounds the persisted distinct-TID list; tables observing
	// more threads record "unknown" and queries check every block.
	tidListCap = 64
	tidUnknown = 0xFFFFFFFF

	// maxBlockCount bounds how many index slots a reader will allocate from
	// a footer before the file size backs them up.
	maxBlockCount = 1 << 28
)

// ErrBadTable is returned when a table file fails validation.
var ErrBadTable = errors.New("profilestore: bad table")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// blockRef is one block's index entry, as held in memory.
type blockRef struct {
	off        int64
	count      uint32
	minCounter uint64
	maxCounter uint64
}

// tableInfo is the footer-derived identity of a table file. The manifest
// repeats these fields; open cross-checks them so a manifest pointing at
// the wrong (e.g. partially recycled) file is caught.
type tableInfo struct {
	Entries      uint64
	MinCounter   uint64
	MaxCounter   uint64
	PID          uint64
	ProfilerAddr uint64
	SamplePeriod uint64
}

// Table is an open reader over one immutable table file.
type Table struct {
	r      io.ReaderAt
	closer io.Closer
	size   int64

	info   tableInfo
	blocks []blockRef
	// tids is the sorted distinct thread-ID list, nil when unknown.
	tids []uint64
}

// writeTable streams counter-ordered entries into path via an atomic
// .tmp→rename, with the store's fault points on the write, sync and rename
// steps. Entries must already be sorted by counter (ingest and compaction
// both guarantee it); the block index is derived as they stream.
func writeTable(path string, entries []shmlog.Entry, pid, profilerAddr, samplePeriod uint64, blockEntries int, inj *faultinject.Injector) (tableInfo, error) {
	info := tableInfo{
		PID:          pid,
		ProfilerAddr: profilerAddr,
		SamplePeriod: samplePeriod,
		Entries:      uint64(len(entries)),
	}
	if len(entries) > 0 {
		info.MinCounter = entries[0].Counter
		info.MaxCounter = entries[len(entries)-1].Counter
	}

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return info, err
	}
	defer func() {
		if f != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	w := &countingWriter{w: inj.Writer(f, faultinject.StoreTableWrite)}
	if _, err := w.Write([]byte(tableMagic)); err != nil {
		return info, err
	}

	// Stream blocks, collecting the index.
	var blocks []blockRef
	tids := collectTIDs(entries)
	buf := make([]byte, 0, blockEntries*entryBytes+4)
	for i := 0; i < len(entries); i += blockEntries {
		j := i + blockEntries
		if j > len(entries) {
			j = len(entries)
		}
		blk := entries[i:j]
		buf = buf[:0]
		for _, e := range blk {
			buf = appendEntry(buf, e)
		}
		sum := crc32.Checksum(buf, crcTable)
		buf = binary.LittleEndian.AppendUint32(buf, sum)
		ref := blockRef{
			off:        w.n,
			count:      uint32(len(blk)),
			minCounter: blk[0].Counter,
			maxCounter: blk[len(blk)-1].Counter,
		}
		if _, err := w.Write(buf); err != nil {
			return info, err
		}
		blocks = append(blocks, ref)
	}

	indexOff := w.n
	buf = buf[:0]
	for _, b := range blocks {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(b.off))
		buf = binary.LittleEndian.AppendUint32(buf, b.count)
		buf = binary.LittleEndian.AppendUint32(buf, 0)
		buf = binary.LittleEndian.AppendUint64(buf, b.minCounter)
	}
	if _, err := w.Write(buf); err != nil {
		return info, err
	}

	tidsOff := w.n
	buf = buf[:0]
	if tids == nil {
		buf = binary.LittleEndian.AppendUint32(buf, tidUnknown)
	} else {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tids)))
		for _, t := range tids {
			buf = binary.LittleEndian.AppendUint64(buf, t)
		}
	}
	if _, err := w.Write(buf); err != nil {
		return info, err
	}

	buf = buf[:0]
	buf = binary.LittleEndian.AppendUint64(buf, uint64(indexOff))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(tidsOff))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blocks)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(blockEntries))
	buf = binary.LittleEndian.AppendUint64(buf, info.Entries)
	buf = binary.LittleEndian.AppendUint64(buf, info.MinCounter)
	buf = binary.LittleEndian.AppendUint64(buf, info.MaxCounter)
	buf = binary.LittleEndian.AppendUint64(buf, info.PID)
	buf = binary.LittleEndian.AppendUint64(buf, info.ProfilerAddr)
	buf = binary.LittleEndian.AppendUint64(buf, info.SamplePeriod)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	buf = append(buf, tableMagic...)
	if _, err := w.Write(buf); err != nil {
		return info, err
	}

	if err := inj.Hit(faultinject.StoreTableSync); err != nil {
		return info, err
	}
	if err := f.Sync(); err != nil {
		return info, err
	}
	if err := f.Close(); err != nil {
		f = nil
		os.Remove(tmp)
		return info, err
	}
	f = nil
	if err := inj.Hit(faultinject.StoreTableRename); err != nil {
		os.Remove(tmp)
		return info, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return info, err
	}
	return info, nil
}

// collectTIDs returns the sorted distinct thread IDs, or nil once the list
// exceeds tidListCap (queries then check every block).
func collectTIDs(entries []shmlog.Entry) []uint64 {
	seen := make(map[uint64]struct{}, tidListCap)
	for _, e := range entries {
		seen[e.ThreadID] = struct{}{}
		if len(seen) > tidListCap {
			return nil
		}
	}
	out := make([]uint64, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func appendEntry(buf []byte, e shmlog.Entry) []byte {
	w0 := e.Counter
	if e.Kind == shmlog.KindReturn {
		w0 |= 1 << 63
	}
	buf = binary.LittleEndian.AppendUint64(buf, w0)
	buf = binary.LittleEndian.AppendUint64(buf, e.Addr)
	buf = binary.LittleEndian.AppendUint64(buf, e.ThreadID)
	return buf
}

func decodeEntry(b []byte) shmlog.Entry {
	w0 := binary.LittleEndian.Uint64(b)
	e := shmlog.Entry{
		Kind:     shmlog.KindCall,
		Counter:  w0 &^ (1 << 63),
		Addr:     binary.LittleEndian.Uint64(b[8:]),
		ThreadID: binary.LittleEndian.Uint64(b[16:]),
	}
	if w0&(1<<63) != 0 {
		e.Kind = shmlog.KindReturn
	}
	return e
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(b []byte) (int, error) {
	n, err := cw.w.Write(b)
	cw.n += int64(n)
	if err == nil && n < len(b) {
		err = io.ErrShortWrite
	}
	return n, err
}

// OpenTable opens and validates a table file.
func OpenTable(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	t, err := OpenTableReaderAt(f, st.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	t.closer = f
	return t, nil
}

// OpenTableReaderAt validates a table held in any random-access source
// (the fuzz target feeds bytes.Reader through here). Nothing in the body
// is trusted until the footer's tail magic and CRC check out, and every
// offset is bounds-checked against size before use.
func OpenTableReaderAt(r io.ReaderAt, size int64) (*Table, error) {
	if size < int64(len(tableMagic))+footerBytes {
		return nil, fmt.Errorf("%w: %d bytes is too small", ErrBadTable, size)
	}
	head := make([]byte, len(tableMagic))
	if _, err := r.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadTable, err)
	}
	if string(head) != tableMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTable)
	}
	foot := make([]byte, footerBytes)
	if _, err := r.ReadAt(foot, size-footerBytes); err != nil {
		return nil, fmt.Errorf("%w: footer: %v", ErrBadTable, err)
	}
	if string(foot[footerBytes-8:]) != tableMagic {
		return nil, fmt.Errorf("%w: bad tail magic (torn file)", ErrBadTable)
	}
	wantCRC := binary.LittleEndian.Uint32(foot[72:])
	if crc32.Checksum(foot[:72], crcTable) != wantCRC {
		return nil, fmt.Errorf("%w: footer CRC mismatch", ErrBadTable)
	}

	t := &Table{r: r, size: size}
	indexOff := int64(binary.LittleEndian.Uint64(foot[0:]))
	tidsOff := int64(binary.LittleEndian.Uint64(foot[8:]))
	blockCount := binary.LittleEndian.Uint32(foot[16:])
	t.info = tableInfo{
		Entries:      binary.LittleEndian.Uint64(foot[24:]),
		MinCounter:   binary.LittleEndian.Uint64(foot[32:]),
		MaxCounter:   binary.LittleEndian.Uint64(foot[40:]),
		PID:          binary.LittleEndian.Uint64(foot[48:]),
		ProfilerAddr: binary.LittleEndian.Uint64(foot[56:]),
		SamplePeriod: binary.LittleEndian.Uint64(foot[64:]),
	}
	if blockCount > maxBlockCount {
		return nil, fmt.Errorf("%w: implausible block count %d", ErrBadTable, blockCount)
	}
	indexLen := int64(blockCount) * indexSlot
	if indexOff < int64(len(tableMagic)) || indexOff+indexLen > size-footerBytes ||
		tidsOff < indexOff+indexLen || tidsOff+4 > size-footerBytes {
		return nil, fmt.Errorf("%w: index/tid offsets out of bounds", ErrBadTable)
	}

	idx := make([]byte, indexLen)
	if _, err := r.ReadAt(idx, indexOff); err != nil {
		return nil, fmt.Errorf("%w: index: %v", ErrBadTable, err)
	}
	t.blocks = make([]blockRef, blockCount)
	var total uint64
	for i := range t.blocks {
		b := idx[i*indexSlot:]
		ref := blockRef{
			off:        int64(binary.LittleEndian.Uint64(b)),
			count:      binary.LittleEndian.Uint32(b[8:]),
			minCounter: binary.LittleEndian.Uint64(b[16:]),
		}
		if ref.count == 0 {
			return nil, fmt.Errorf("%w: empty block %d", ErrBadTable, i)
		}
		end := ref.off + int64(ref.count)*entryBytes + 4
		if ref.off < int64(len(tableMagic)) || end > indexOff {
			return nil, fmt.Errorf("%w: block %d out of bounds", ErrBadTable, i)
		}
		// maxCounter is implied: the next block's min, or the table max.
		if i+1 < len(t.blocks) {
			ref.maxCounter = binary.LittleEndian.Uint64(idx[(i+1)*indexSlot+16:])
		} else {
			ref.maxCounter = t.info.MaxCounter
		}
		if ref.maxCounter < ref.minCounter {
			return nil, fmt.Errorf("%w: block %d counter bounds inverted", ErrBadTable, i)
		}
		t.blocks[i] = ref
		total += uint64(ref.count)
	}
	if total != t.info.Entries {
		return nil, fmt.Errorf("%w: index holds %d entries, footer says %d", ErrBadTable, total, t.info.Entries)
	}

	tidHead := make([]byte, 4)
	if _, err := r.ReadAt(tidHead, tidsOff); err != nil {
		return nil, fmt.Errorf("%w: tid list: %v", ErrBadTable, err)
	}
	if n := binary.LittleEndian.Uint32(tidHead); n != tidUnknown {
		if n > tidListCap || tidsOff+4+int64(n)*8 > size-footerBytes {
			return nil, fmt.Errorf("%w: tid list out of bounds", ErrBadTable)
		}
		raw := make([]byte, int(n)*8)
		if _, err := r.ReadAt(raw, tidsOff+4); err != nil {
			return nil, fmt.Errorf("%w: tid list: %v", ErrBadTable, err)
		}
		t.tids = make([]uint64, n)
		for i := range t.tids {
			t.tids[i] = binary.LittleEndian.Uint64(raw[i*8:])
		}
	}
	return t, nil
}

// Close releases the underlying file (no-op for in-memory readers).
func (t *Table) Close() error {
	if t.closer != nil {
		return t.closer.Close()
	}
	return nil
}

// Blocks returns the number of blocks.
func (t *Table) Blocks() int { return len(t.blocks) }

// Info returns the footer identity.
func (t *Table) Info() tableInfo { return t.info }

// HasTID reports whether the table may contain entries of tid (true when
// the distinct-TID list overflowed at write time).
func (t *Table) HasTID(tid uint64) bool {
	if t.tids == nil {
		return true
	}
	i := sort.Search(len(t.tids), func(i int) bool { return t.tids[i] >= tid })
	return i < len(t.tids) && t.tids[i] == tid
}

// ReadBlock decodes block i, verifying its CRC.
func (t *Table) ReadBlock(i int) ([]shmlog.Entry, error) {
	if i < 0 || i >= len(t.blocks) {
		return nil, fmt.Errorf("%w: block %d of %d", ErrBadTable, i, len(t.blocks))
	}
	ref := t.blocks[i]
	raw := make([]byte, int(ref.count)*entryBytes+4)
	if _, err := t.r.ReadAt(raw, ref.off); err != nil {
		return nil, fmt.Errorf("%w: block %d: %v", ErrBadTable, i, err)
	}
	body := raw[:len(raw)-4]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(raw[len(raw)-4:]) {
		return nil, fmt.Errorf("%w: block %d CRC mismatch", ErrBadTable, i)
	}
	out := make([]shmlog.Entry, ref.count)
	for j := range out {
		out[j] = decodeEntry(body[j*entryBytes:])
	}
	return out, nil
}
