package profilestore

// Kill-at-every-fault-point matrix for the store's two mutation paths
// (ingest, compaction). The child re-execs this test binary, arms a process
// SIGKILL at one persistence fault point, and runs the mutation; the parent
// asserts the store reopens, reports its repairs, never loses an
// acknowledged segment, and never double-counts one.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"teeperf/internal/faultinject"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

const (
	crashEnvChild = "TEEPERF_STORE_CRASH_CHILD" // "ingest" | "compact"
	crashEnvPoint = "TEEPERF_STORE_CRASH_POINT"
	crashEnvNth   = "TEEPERF_STORE_CRASH_NTH"
	crashEnvDir   = "TEEPERF_STORE_CRASH_DIR"
)

func TestMain(m *testing.M) {
	if os.Getenv(crashEnvChild) != "" {
		runCrashChild()
		// Only reached when the armed fault point never fired — the parent
		// treats a clean exit as the failure it is.
		fmt.Fprintln(os.Stderr, "store crash child: fault point never reached")
		os.Exit(3)
	}
	os.Exit(m.Run())
}

// crashOptions must match between the child and the parent's reopen (minus
// the injector) so table geometry agrees with the manifest.
func crashOptions(inj *faultinject.Injector) Options {
	return Options{BlockEntries: 8, Fanout: 2, Injector: inj}
}

// crashSyms/crashSegments build the deterministic workload both sides agree
// on: three single-thread balanced segments sharing one virtual counter.
func crashSyms() (*symtab.Table, []uint64) {
	tab := symtab.New()
	addrs := make([]uint64, 3)
	for i, name := range []string{"pp_a", "pp_b", "pp_c"} {
		addrs[i] = tab.MustRegister(name, 16, "crash_test.go", 10+i)
	}
	return tab, addrs
}

func crashSegments() (*symtab.Table, []string, []*shmlog.Log) {
	tab, addrs := crashSyms()
	tick := uint64(0)
	ids := []string{"seg-0", "seg-1", "seg-2"}
	logs := make([]*shmlog.Log, len(ids))
	for i := range ids {
		var entries []shmlog.Entry
		for r := 0; r < 4; r++ {
			for _, a := range addrs {
				tick++
				entries = append(entries, shmlog.Entry{Kind: shmlog.KindCall, Counter: tick, Addr: a, ThreadID: 7})
				tick += 2
				entries = append(entries, shmlog.Entry{Kind: shmlog.KindReturn, Counter: tick, Addr: a, ThreadID: 7})
			}
		}
		logs[i] = shmlog.FromEntries(entries, 4242, 0, 1)
	}
	return tab, ids, logs
}

func runCrashChild() {
	point, ok := faultinject.PointByName(os.Getenv(crashEnvPoint))
	if !ok {
		fmt.Fprintf(os.Stderr, "store crash child: unknown point %q\n", os.Getenv(crashEnvPoint))
		os.Exit(4)
	}
	nth, _ := strconv.Atoi(os.Getenv(crashEnvNth))
	if nth < 1 {
		nth = 1
	}
	dir := os.Getenv(crashEnvDir)

	inj := faultinject.New(1)
	st, err := Open(dir, crashOptions(inj))
	if err != nil {
		fmt.Fprintf(os.Stderr, "store crash child: open: %v\n", err)
		os.Exit(4)
	}
	tab, ids, logs := crashSegments()
	inj.Arm(point, nth, faultinject.Kill())

	switch os.Getenv(crashEnvChild) {
	case "ingest":
		for i, id := range ids {
			if _, err := st.IngestLog(logs[i], tab, id); err != nil {
				fmt.Fprintf(os.Stderr, "store crash child: ingest %s: %v\n", id, err)
				os.Exit(4)
			}
			// The acknowledgment line the parent's loss check keys on: only
			// printed after IngestLog's durable commit returned.
			fmt.Printf("ACK %s\n", id)
		}
	case "compact":
		// Parent pre-ingested the segments; the kill lands inside the merge.
		if err := st.Compact(); err != nil {
			fmt.Fprintf(os.Stderr, "store crash child: compact: %v\n", err)
			os.Exit(4)
		}
	default:
		fmt.Fprintf(os.Stderr, "store crash child: unknown mode %q\n", os.Getenv(crashEnvChild))
		os.Exit(4)
	}
}

// runStoreKillChild re-executes the test binary as a crash victim, asserts
// SIGKILL took it, and returns the segment IDs it acknowledged.
func runStoreKillChild(t *testing.T, mode, dir, point string, nth int) []string {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		crashEnvChild+"="+mode,
		crashEnvPoint+"="+point,
		crashEnvNth+"="+strconv.Itoa(nth),
		crashEnvDir+"="+dir,
	)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("child exited cleanly (err=%v) — the fault point never killed it\nstderr: %s", err, stderr.String())
	}
	ws, ok := exitErr.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("child died wrong: %v (status %+v)\nstderr: %s", err, exitErr.Sys(), stderr.String())
	}
	var acked []string
	sc := bufio.NewScanner(&stdout)
	for sc.Scan() {
		if id, ok := strings.CutPrefix(sc.Text(), "ACK "); ok {
			acked = append(acked, id)
		}
	}
	return acked
}

// crashOracle folds the full deterministic workload offline.
func crashOracle(t *testing.T) string {
	t.Helper()
	tab, ids, logs := crashSegments()
	dir := t.TempDir()
	st := mustOpen(t, dir, crashOptions(nil))
	for i, id := range ids {
		if _, err := st.IngestLog(logs[i], tab, id); err != nil {
			t.Fatal(err)
		}
	}
	return foldedBytes(t, st, AllThreads, 0, FullWindow)
}

// verifyCrashRecovery reopens the store after a kill and runs the whole
// contract: reopen succeeds, acknowledged segments survive, replaying the
// spool is exactly-once, and the final profile matches the offline oracle.
func verifyCrashRecovery(t *testing.T, dir string, acked []string, oracle string) {
	st, err := Open(dir, crashOptions(nil))
	if err != nil {
		t.Fatalf("store did not reopen after kill: %v", err)
	}
	defer st.Close()

	// Loss check: everything the child saw acknowledged must be present.
	segs := st.Segments()
	for _, id := range acked {
		if _, ok := segs[id]; !ok {
			t.Errorf("acknowledged segment %q lost (present: %v, report: %+v)", id, segs, st.Report())
		}
	}

	// Exactly-once check: replay the whole spool. Acknowledged segments must
	// come back Duplicate; unacknowledged ones may be either (the kill can
	// land between commit and acknowledgment), but never double-count.
	ackedSet := make(map[string]bool, len(acked))
	for _, id := range acked {
		ackedSet[id] = true
	}
	tab, ids, logs := crashSegments()
	for i, id := range ids {
		res, err := st.IngestLog(logs[i], tab, id)
		if err != nil {
			t.Fatalf("replay %s: %v", id, err)
		}
		if ackedSet[id] && !res.Duplicate {
			t.Errorf("acknowledged segment %q replayed as new — it was lost", id)
		}
	}
	if got := len(st.Segments()); got != len(ids) {
		t.Errorf("store holds %d segments after replay, want %d: %v", got, len(ids), st.Segments())
	}
	if got := foldedBytes(t, st, AllThreads, 0, FullWindow); got != oracle {
		t.Errorf("profile after recovery+replay diverged from oracle\n got: %q\nwant: %q", got, oracle)
	}
}

// TestStoreKillAtEveryFaultPoint is the crash-consistency acceptance test:
// SIGKILL the store at every persistence fault point, in both the ingest
// and the compaction path, and the recovery contract must hold.
func TestStoreKillAtEveryFaultPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill matrix skipped in -short")
	}
	oracle := crashOracle(t)

	type trial struct {
		point faultinject.Point
		nth   int
	}
	trialsFor := func(mode string) []trial {
		var trials []trial
		for _, p := range faultinject.StorePoints {
			trials = append(trials, trial{p, 1})
			// Streamed table writers hit the point once per write: nth 2
			// lands the kill mid-file rather than before the first byte. The
			// manifest commits in one write, so its nth 2 only fires when a
			// second commit happens — the multi-segment ingest path.
			if p == faultinject.StoreTableWrite ||
				(mode == "ingest" && p == faultinject.StoreManifestWrite) {
				trials = append(trials, trial{p, 2})
			}
		}
		return trials
	}

	t.Run("ingest", func(t *testing.T) {
		for _, tr := range trialsFor("ingest") {
			tr := tr
			t.Run(fmt.Sprintf("%s/nth=%d", tr.point, tr.nth), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				acked := runStoreKillChild(t, "ingest", dir, tr.point.String(), tr.nth)
				verifyCrashRecovery(t, dir, acked, oracle)
			})
		}
	})

	t.Run("compact", func(t *testing.T) {
		for _, tr := range trialsFor("compact") {
			tr := tr
			t.Run(fmt.Sprintf("%s/nth=%d", tr.point, tr.nth), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				// Pre-build a clean store: all three segments ingested, so
				// every segment is "acknowledged" before the kill.
				tab, ids, logs := crashSegments()
				pre, err := Open(dir, crashOptions(nil))
				if err != nil {
					t.Fatal(err)
				}
				for i, id := range ids {
					if _, err := pre.IngestLog(logs[i], tab, id); err != nil {
						t.Fatal(err)
					}
				}
				pre.Close()
				runStoreKillChild(t, "compact", dir, tr.point.String(), tr.nth)
				// Compaction must never lose a segment: all three were
				// acknowledged before the child started.
				verifyCrashRecovery(t, dir, ids, oracle)
			})
		}
	})
}

// TestStoreRecoveryReportAfterKill pins the structured-report half of the
// contract: a kill that tears the CURRENT commit must surface as a
// non-clean OpenReport, not as silence.
func TestStoreRecoveryReportAfterKill(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill test skipped in -short")
	}
	dir := t.TempDir()
	runStoreKillChild(t, "ingest", dir, faultinject.StoreCurrentRename.String(), 1)
	st, err := Open(dir, crashOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rep := st.Report()
	if rep.Clean() {
		t.Fatalf("kill at current-rename left leftovers, but the report is clean: %+v", rep)
	}
	data, err := os.ReadFile(filepath.Join(dir, currentName))
	if err == nil {
		// When CURRENT survived, it must point at a manifest that exists.
		name := strings.TrimSpace(string(data))
		if _, statErr := os.Stat(filepath.Join(dir, name)); statErr != nil {
			t.Fatalf("CURRENT points at %q which does not exist", name)
		}
	}
}
