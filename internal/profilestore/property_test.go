package profilestore

// The conformance property the whole store design hangs on: for any
// recording — any batch size, shard count and rotation schedule — the
// store's full-window folded output is byte-identical to an offline Analyze
// of the concatenated segments, and stays identical across every compaction
// state (pre, mid, post). Random balanced call streams are pushed through
// the real probe runtime (not synthetic entries), so the property covers
// the exact byte paths production recordings take.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"teeperf/internal/analyzer"
	"teeperf/internal/counter"
	"teeperf/internal/flamegraph"
	"teeperf/internal/probe"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

func foldedString(t *testing.T, p *analyzer.Profile) string {
	t.Helper()
	var buf bytes.Buffer
	if err := flamegraph.WriteFolded(&buf, p.Folded()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestStoreConformance(t *testing.T) {
	for _, batch := range []int{1, 16} {
		for _, shards := range []int{1, 8} {
			for _, rotations := range []int{1, 5} {
				name := fmt.Sprintf("batch=%d/shards=%d/rotations=%d", batch, shards, rotations)
				t.Run(name, func(t *testing.T) {
					runConformance(t, batch, shards, rotations, int64(batch*100+shards*10+rotations))
				})
			}
		}
	}
}

func runConformance(t *testing.T, batch, shards, rotations int, seed int64) {
	tab := symtab.New()
	var addrs []uint64
	for _, name := range []string{"pp_a", "pp_b", "pp_c", "pp_d", "pp_e", "pp_f"} {
		addrs = append(addrs, tab.MustRegister(name, 16, "property_test.go", 1))
	}

	// One virtual counter shared across rotations: the software counter
	// carries across segment boundaries in production, and the merge
	// tie-break relies on it.
	src := counter.NewVirtual(1)
	st := mustOpen(t, t.TempDir(), Options{BlockEntries: 16, Fanout: 4, CacheBlocks: 32})

	var oracle []shmlog.Entry
	for r := 0; r < rotations; r++ {
		log, err := shmlog.New(1<<13, shmlog.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		opts := []probe.Option{}
		if batch > 1 {
			opts = append(opts, probe.WithBatch(batch))
		}
		rt, err := probe.New(log, src, opts...)
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(r*31+w)))
				th := rt.Thread()
				var stack []uint64
				for i := 0; i < 120; i++ {
					if len(stack) > 0 && (len(stack) >= 12 || rng.Intn(2) == 0) {
						top := stack[len(stack)-1]
						stack = stack[:len(stack)-1]
						th.Exit(top)
					} else {
						a := addrs[rng.Intn(len(addrs))]
						stack = append(stack, a)
						th.Enter(a)
					}
				}
				for len(stack) > 0 {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					th.Exit(top)
				}
			}(w)
		}
		wg.Wait()
		rt.Flush()
		if d := rt.Dropped(); d != 0 {
			t.Fatalf("rotation %d dropped %d events (log too small for the test)", r, d)
		}

		if _, err := st.IngestLog(log, tab, fmt.Sprintf("seg-%d", r)); err != nil {
			t.Fatalf("ingest rotation %d: %v", r, err)
		}
		oracle = append(oracle, log.CommittedEntries()...)
	}

	// Offline oracle: concatenate the segments' committed entries in
	// rotation order and analyze them directly.
	oracleLog := shmlog.FromEntries(oracle, 0, 0, 1)
	op, err := analyzer.Analyze(oracleLog, tab)
	if err != nil {
		t.Fatal(err)
	}
	want := foldedString(t, op)
	if rotations > 1 && want == "" {
		t.Fatal("oracle folded output empty — test generated no samples")
	}

	check := func(stage string) {
		p, err := st.Profile(AllThreads, 0, FullWindow)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if got := foldedString(t, p); got != want {
			t.Errorf("%s: folded output diverged from offline analyze\n got: %q\nwant: %q", stage, got, want)
		}
	}

	check("pre-compaction")

	// Query concurrently with compaction: readers snapshot, writers swap —
	// the race detector validates the locking discipline here.
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := st.Profile(AllThreads, 0, FullWindow); err != nil {
				t.Errorf("concurrent query: %v", err)
				return
			}
		}
	}()

	if _, err := st.MaybeCompact(); err != nil {
		t.Fatal(err)
	}
	check("mid-compaction")
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	qwg.Wait()

	if got := st.Stats().Tables; got != 1 {
		t.Fatalf("full compaction left %d tables", got)
	}
	check("post-compaction")

	// Reopen and check once more: the property must hold across restarts.
	dir := st.Dir()
	st.Close()
	re := mustOpen(t, dir, Options{BlockEntries: 16})
	if !re.Report().Clean() {
		t.Fatalf("reopen after compaction not clean: %+v", re.Report())
	}
	p, err := re.Profile(AllThreads, 0, FullWindow)
	if err != nil {
		t.Fatal(err)
	}
	if got := foldedString(t, p); got != want {
		t.Errorf("post-reopen folded output diverged\n got: %q\nwant: %q", got, want)
	}
}
