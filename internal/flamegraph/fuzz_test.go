package flamegraph

import (
	"io"
	"strings"
	"testing"
)

// FuzzReadFolded: the folded-stack parser must never panic; accepted input
// must build a conserving tree and render to SVG without error.
func FuzzReadFolded(f *testing.F) {
	f.Add("main;work 100\nmain 5\n")
	f.Add("a 1")
	f.Add(" 5")
	f.Add("a;;b 3")
	f.Fuzz(func(t *testing.T, input string) {
		folded, err := ReadFolded(strings.NewReader(input))
		if err != nil {
			return
		}
		root := Build(folded)
		if !fuzzCheckConservation(root) {
			t.Fatal("tree does not conserve totals")
		}
		if err := RenderSVG(io.Discard, folded, SVGOptions{}); err != nil {
			t.Fatalf("render: %v", err)
		}
	})
}

func fuzzCheckConservation(n *Node) bool {
	var sum uint64
	for _, c := range n.Children {
		if !fuzzCheckConservation(c) {
			return false
		}
		sum += c.Total
	}
	return n.Total == n.Self+sum
}
