// Package flamegraph implements TEE-Perf's stage 4: visualization of the
// analyzer output as Flame Graphs. It supports the standard folded-stack
// text format (interoperable with Brendan Gregg's tooling, which the paper
// integrates) and renders self-contained SVG flame graphs.
package flamegraph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Node is one frame in the merged flame graph tree.
type Node struct {
	// Name is the frame's function name.
	Name string
	// Total is the inclusive value (self + descendants).
	Total uint64
	// Self is the value attributed directly to this frame.
	Self uint64
	// Children are sorted by name for deterministic layout.
	Children []*Node
}

// ErrBadFolded is returned when parsing malformed folded-stack input.
var ErrBadFolded = errors.New("flamegraph: bad folded line")

// RootName is the synthetic root frame of every tree.
const RootName = "all"

// Build merges folded stacks ("a;b;c" -> value) into a tree rooted at a
// synthetic "all" frame.
func Build(folded map[string]uint64) *Node {
	root := &Node{Name: RootName}
	keys := make([]string, 0, len(folded))
	for k := range folded {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, stack := range keys {
		v := folded[stack]
		if v == 0 || stack == "" {
			continue
		}
		node := root
		root.Total += v
		for _, name := range strings.Split(stack, ";") {
			child := node.child(name)
			child.Total += v
			node = child
		}
		node.Self += v
	}
	return root
}

func (n *Node) child(name string) *Node {
	i := sort.Search(len(n.Children), func(i int) bool { return n.Children[i].Name >= name })
	if i < len(n.Children) && n.Children[i].Name == name {
		return n.Children[i]
	}
	c := &Node{Name: name}
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
	return c
}

// Depth returns the maximum frame depth below (and including) n.
func (n *Node) Depth() int {
	max := 1
	for _, c := range n.Children {
		if d := c.Depth() + 1; d > max {
			max = d
		}
	}
	return max
}

// Find returns the descendant (or n itself) with the given name, walking
// depth-first.
func (n *Node) Find(name string) *Node {
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if found := c.Find(name); found != nil {
			return found
		}
	}
	return nil
}

// WriteFolded emits folded stacks in the canonical text format, sorted for
// deterministic output.
func WriteFolded(w io.Writer, folded map[string]uint64) error {
	keys := make([]string, 0, len(folded))
	for k := range folded {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bw := bufio.NewWriter(w)
	for _, k := range keys {
		if _, err := fmt.Fprintf(bw, "%s %d\n", k, folded[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFolded parses folded-stack text: "frame;frame;frame value" per line.
func ReadFolded(r io.Reader) (map[string]uint64, error) {
	out := make(map[string]uint64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("%w %d: %q", ErrBadFolded, lineNo, line)
		}
		v, err := strconv.ParseUint(line[sp+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w %d: value: %v", ErrBadFolded, lineNo, err)
		}
		out[line[:sp]] += v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("flamegraph: read folded: %w", err)
	}
	return out, nil
}
