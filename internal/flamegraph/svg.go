package flamegraph

import (
	"bufio"
	"fmt"
	"html"
	"io"
)

// SVGOptions configures RenderSVG.
type SVGOptions struct {
	// Title is the heading rendered at the top.
	Title string
	// Width is the image width in pixels (default 1200).
	Width int
	// Unit names the value unit in tooltips (default "ticks").
	Unit string
	// MinFrameWidth drops frames narrower than this many pixels
	// (default 0.25).
	MinFrameWidth float64
	// Interactive embeds click-to-zoom JavaScript (like the original
	// flamegraph.pl SVGs). The file stays self-contained.
	Interactive bool
}

const (
	frameHeight = 16
	headerSpace = 40
	footerSpace = 10
	fontSize    = 11
	// Approximate character width at fontSize, used to truncate labels.
	charWidth = 6.6
)

// RenderSVG renders folded stacks as a static, self-contained SVG flame
// graph with hover tooltips (<title> elements).
func RenderSVG(w io.Writer, folded map[string]uint64, opts SVGOptions) error {
	if opts.Width <= 0 {
		opts.Width = 1200
	}
	if opts.Unit == "" {
		opts.Unit = "ticks"
	}
	if opts.MinFrameWidth <= 0 {
		opts.MinFrameWidth = 0.25
	}
	if opts.Title == "" {
		opts.Title = "TEE-Perf Flame Graph"
	}
	root := Build(folded)
	depth := root.Depth()
	height := headerSpace + depth*frameHeight + footerSpace

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<?xml version="1.0" standalone="no"?>
<svg version="1.1" width="%d" height="%d" xmlns="http://www.w3.org/2000/svg" font-family="Verdana, sans-serif">
<rect x="0" y="0" width="%d" height="%d" fill="#f8f8f8"/>
<text x="%d" y="24" font-size="15" text-anchor="middle" fill="#333">%s</text>
`, opts.Width, height, opts.Width, height, opts.Width/2, html.EscapeString(opts.Title))

	if root.Total > 0 {
		r := &svgRenderer{
			bw:    bw,
			total: root.Total,
			scale: float64(opts.Width-20) / float64(root.Total),
			opts:  opts,
			// Frames grow upward from the bottom, root at the bottom row.
			baseY: height - footerSpace - frameHeight,
		}
		r.frame(root, 10, 0)
		if opts.Interactive {
			writeZoomScript(bw, opts.Width)
		}
	} else {
		fmt.Fprintf(bw, `<text x="%d" y="%d" font-size="12" text-anchor="middle" fill="#777">no samples</text>`+"\n",
			opts.Width/2, height/2)
	}

	fmt.Fprint(bw, "</svg>\n")
	return bw.Flush()
}

type svgRenderer struct {
	bw    *bufio.Writer
	total uint64
	scale float64
	opts  SVGOptions
	baseY int
}

// frame draws node at horizontal offset x (pixels) and the given depth,
// then recurses into children left to right.
func (r *svgRenderer) frame(n *Node, x float64, depth int) {
	w := float64(n.Total) * r.scale
	if w < r.opts.MinFrameWidth {
		return
	}
	y := r.baseY - depth*frameHeight
	pct := 100 * float64(n.Total) / float64(r.total)
	fill := colorFor(n.Name)
	tooltip := fmt.Sprintf("%s (%d %s, %.2f%%)", n.Name, n.Total, r.opts.Unit, pct)

	attrs := ""
	if r.opts.Interactive {
		// Data attributes carry the tick-domain geometry the zoom script
		// rescales from.
		attrs = fmt.Sprintf(` class="fg" data-x="%.2f" data-w="%.2f" data-d="%d" data-n="%s"`,
			x, w, depth, html.EscapeString(n.Name))
	}
	fmt.Fprintf(r.bw,
		`<g%s><title>%s</title><rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s" rx="1"/>`,
		attrs, html.EscapeString(tooltip), x, y, w, frameHeight-1, fill)
	if label := fitLabel(n.Name, w); label != "" {
		fmt.Fprintf(r.bw,
			`<text x="%.2f" y="%d" font-size="%d" fill="#222">%s</text>`,
			x+3, y+frameHeight-5, fontSize, html.EscapeString(label))
	}
	fmt.Fprint(r.bw, "</g>\n")

	cx := x
	for _, c := range n.Children {
		r.frame(c, cx, depth+1)
		cx += float64(c.Total) * r.scale
	}
}

// fitLabel truncates a name to fit a frame of pixel width w.
func fitLabel(name string, w float64) string {
	maxChars := int((w - 6) / charWidth)
	if maxChars < 3 {
		return ""
	}
	if len(name) <= maxChars {
		return name
	}
	return name[:maxChars-2] + ".."
}

// colorFor picks a deterministic warm color per function name, in the
// traditional flame palette.
func colorFor(name string) string {
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	red := 205 + int(h%50)
	green := 50 + int((h>>8)%150)
	blue := int((h >> 16) % 40)
	return fmt.Sprintf("rgb(%d,%d,%d)", red, green, blue)
}

// writeZoomScript embeds the click-to-zoom behaviour: clicking a frame
// rescales every frame relative to it (descendants expand, unrelated
// frames collapse), clicking the background resets. Text labels are
// refitted after each zoom.
func writeZoomScript(bw *bufio.Writer, width int) {
	fmt.Fprintf(bw, `<script><![CDATA[
(function() {
  var W = %d - 20, PAD = 10, CW = %.2f;
  var frames = [];
  var gs = document.querySelectorAll("g.fg");
  for (var i = 0; i < gs.length; i++) {
    var g = gs[i];
    frames.push({
      g: g,
      rect: g.querySelector("rect"),
      text: g.querySelector("text"),
      x: parseFloat(g.getAttribute("data-x")),
      w: parseFloat(g.getAttribute("data-w")),
      d: parseInt(g.getAttribute("data-d"), 10),
      n: g.getAttribute("data-n")
    });
    g.style.cursor = "pointer";
    g.addEventListener("click", (function(f) {
      return function(ev) { zoom(f); ev.stopPropagation(); };
    })(frames[i]));
  }
  function fit(f, w) {
    if (!f.text) return;
    var max = Math.floor((w - 6) / CW);
    if (max < 3) { f.text.textContent = ""; return; }
    f.text.textContent = f.n.length <= max ? f.n : f.n.slice(0, max - 2) + "..";
  }
  function zoom(target) {
    var scale = W / target.w;
    for (var i = 0; i < frames.length; i++) {
      var f = frames[i];
      var inside = f.x >= target.x - 0.01 && f.x + f.w <= target.x + target.w + 0.01;
      var isAncestor = f.d <= target.d && f.x <= target.x + 0.01 && f.x + f.w >= target.x + target.w - 0.01;
      var nx, nw;
      if (inside || isAncestor) {
        nx = isAncestor ? PAD : PAD + (f.x - target.x) * scale;
        nw = isAncestor ? W : f.w * scale;
        f.g.style.display = "";
        f.rect.setAttribute("x", nx.toFixed(2));
        f.rect.setAttribute("width", Math.max(nw, 0.5).toFixed(2));
        if (f.text) f.text.setAttribute("x", (nx + 3).toFixed(2));
        fit(f, nw);
      } else {
        f.g.style.display = "none";
      }
    }
  }
  function reset() {
    for (var i = 0; i < frames.length; i++) {
      var f = frames[i];
      f.g.style.display = "";
      f.rect.setAttribute("x", f.x.toFixed(2));
      f.rect.setAttribute("width", f.w.toFixed(2));
      if (f.text) f.text.setAttribute("x", (f.x + 3).toFixed(2));
      fit(f, f.w);
    }
  }
  document.documentElement.addEventListener("click", reset);
})();
]]></script>
`, width, charWidth)
}
