package flamegraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestBuildDiff(t *testing.T) {
	before := map[string]uint64{
		"main;alpha": 60,
		"main;beta":  40,
	}
	after := map[string]uint64{
		"main;alpha": 20,
		"main;gamma": 80,
	}
	root := BuildDiff(before, after)
	if root.Before != 100 || root.After != 100 {
		t.Fatalf("root totals = %d/%d, want 100/100", root.Before, root.After)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "main" {
		t.Fatalf("root children: %+v", root.Children)
	}
	main := root.Children[0]
	names := make(map[string]*DiffNode)
	for _, c := range main.Children {
		names[c.Name] = c
	}
	// beta only exists before, gamma only after — both must be present.
	if b := names["beta"]; b == nil || b.Before != 40 || b.After != 0 {
		t.Fatalf("beta = %+v", names["beta"])
	}
	if g := names["gamma"]; g == nil || g.Before != 0 || g.After != 80 {
		t.Fatalf("gamma = %+v", names["gamma"])
	}
	if a := names["alpha"]; a == nil || a.SelfBefore != 60 || a.SelfAfter != 20 {
		t.Fatalf("alpha = %+v", names["alpha"])
	}
	// Children sorted by name for deterministic layout.
	for i := 1; i < len(main.Children); i++ {
		if main.Children[i-1].Name >= main.Children[i].Name {
			t.Fatalf("children unsorted: %s >= %s", main.Children[i-1].Name, main.Children[i].Name)
		}
	}
}

func TestRenderDiffSVG(t *testing.T) {
	before := map[string]uint64{"main;alpha": 60, "main;beta": 40}
	after := map[string]uint64{"main;alpha": 20, "main;beta": 40, "main;gamma": 40}
	var buf bytes.Buffer
	if err := RenderDiffSVG(&buf, before, after, SVGOptions{Title: "delta"}); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{"<svg", "</svg>", "delta", "red = grew", "blue = shrank", "alpha", "gamma"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := RenderDiffSVG(&buf2, before, after, SVGOptions{Title: "delta"}); err != nil {
		t.Fatal(err)
	}
	if svg != buf2.String() {
		t.Error("differential SVG not deterministic")
	}

	// Empty input renders the placeholder, not a division by zero.
	var empty bytes.Buffer
	if err := RenderDiffSVG(&empty, nil, nil, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no samples") {
		t.Error("empty diff SVG missing placeholder")
	}
}

func TestDiffColor(t *testing.T) {
	if c := diffColor(0); c != "rgb(224,224,224)" {
		t.Errorf("zero delta color = %s", c)
	}
	grew, shrank := diffColor(0.05), diffColor(-0.05)
	if !strings.HasPrefix(grew, "rgb(240,") {
		t.Errorf("positive delta not red-side: %s", grew)
	}
	if !strings.HasSuffix(shrank, ",240)") {
		t.Errorf("negative delta not blue-side: %s", shrank)
	}
	// Saturates rather than overflowing.
	if diffColor(5) != diffColor(0.2) {
		t.Error("saturation not applied")
	}
}
