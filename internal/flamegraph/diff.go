package flamegraph

import (
	"bufio"
	"fmt"
	"html"
	"io"
	"sort"
	"strings"
)

// DiffNode is one frame in a merged differential flame graph: the same
// frame tree as Node, carrying both profiles' inclusive values. Layout
// width is Before+After (additive down the tree, so frames always contain
// their children), while color encodes the share delta — a frame present in
// only one profile still gets drawn, unlike after-only differential
// layouts.
type DiffNode struct {
	// Name is the frame's function name.
	Name string
	// Before and After are the inclusive values from each profile.
	Before, After uint64
	// SelfBefore and SelfAfter are the values attributed directly here.
	SelfBefore, SelfAfter uint64
	// Children are sorted by name for deterministic layout.
	Children []*DiffNode
}

// BuildDiff merges two folded-stack maps into one differential tree rooted
// at a synthetic "all" frame.
func BuildDiff(before, after map[string]uint64) *DiffNode {
	root := &DiffNode{Name: RootName}
	keys := make(map[string]struct{}, len(before)+len(after))
	for k := range before {
		keys[k] = struct{}{}
	}
	for k := range after {
		keys[k] = struct{}{}
	}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	for _, stack := range ordered {
		if stack == "" {
			continue
		}
		b, a := before[stack], after[stack]
		if b == 0 && a == 0 {
			continue
		}
		node := root
		root.Before += b
		root.After += a
		for _, name := range strings.Split(stack, ";") {
			child := node.child(name)
			child.Before += b
			child.After += a
			node = child
		}
		node.SelfBefore += b
		node.SelfAfter += a
	}
	return root
}

func (n *DiffNode) child(name string) *DiffNode {
	i := sort.Search(len(n.Children), func(i int) bool { return n.Children[i].Name >= name })
	if i < len(n.Children) && n.Children[i].Name == name {
		return n.Children[i]
	}
	c := &DiffNode{Name: name}
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
	return c
}

// Depth returns the maximum frame depth below (and including) n.
func (n *DiffNode) Depth() int {
	max := 1
	for _, c := range n.Children {
		if d := c.Depth() + 1; d > max {
			max = d
		}
	}
	return max
}

// width is the layout metric: additive, and nonzero for frames present in
// either profile.
func (n *DiffNode) width() uint64 { return n.Before + n.After }

// RenderDiffSVG renders a differential flame graph: frame width is the
// combined Before+After weight, frame color the change in inclusive share
// between the profiles (red grew, blue shrank, gray unchanged). Shares are
// per-profile fractions, so recordings of different lengths compare
// meaningfully.
func RenderDiffSVG(w io.Writer, before, after map[string]uint64, opts SVGOptions) error {
	if opts.Width <= 0 {
		opts.Width = 1200
	}
	if opts.Unit == "" {
		opts.Unit = "ticks"
	}
	if opts.MinFrameWidth <= 0 {
		opts.MinFrameWidth = 0.25
	}
	if opts.Title == "" {
		opts.Title = "TEE-Perf Differential Flame Graph"
	}
	root := BuildDiff(before, after)
	depth := root.Depth()
	height := headerSpace + depth*frameHeight + footerSpace

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<?xml version="1.0" standalone="no"?>
<svg version="1.1" width="%d" height="%d" xmlns="http://www.w3.org/2000/svg" font-family="Verdana, sans-serif">
<rect x="0" y="0" width="%d" height="%d" fill="#f8f8f8"/>
<text x="%d" y="24" font-size="15" text-anchor="middle" fill="#333">%s</text>
<text x="10" y="24" font-size="11" fill="#c00">red = grew</text>
<text x="%d" y="24" font-size="11" text-anchor="end" fill="#00c">blue = shrank</text>
`, opts.Width, height, opts.Width, height, opts.Width/2, html.EscapeString(opts.Title), opts.Width-10)

	if root.width() > 0 {
		r := &diffRenderer{
			bw:          bw,
			scale:       float64(opts.Width-20) / float64(root.width()),
			totalBefore: root.Before,
			totalAfter:  root.After,
			opts:        opts,
			baseY:       height - footerSpace - frameHeight,
		}
		r.frame(root, 10, 0)
	} else {
		fmt.Fprintf(bw, `<text x="%d" y="%d" font-size="12" text-anchor="middle" fill="#777">no samples</text>`+"\n",
			opts.Width/2, height/2)
	}

	fmt.Fprint(bw, "</svg>\n")
	return bw.Flush()
}

type diffRenderer struct {
	bw          *bufio.Writer
	scale       float64
	totalBefore uint64
	totalAfter  uint64
	opts        SVGOptions
	baseY       int
}

// shareDelta is the frame's inclusive-share change between profiles, each
// side normalized by its own total (an empty side contributes share 0).
func (r *diffRenderer) shareDelta(n *DiffNode) float64 {
	var sb, sa float64
	if r.totalBefore > 0 {
		sb = float64(n.Before) / float64(r.totalBefore)
	}
	if r.totalAfter > 0 {
		sa = float64(n.After) / float64(r.totalAfter)
	}
	return sa - sb
}

func (r *diffRenderer) frame(n *DiffNode, x float64, depth int) {
	w := float64(n.width()) * r.scale
	if w < r.opts.MinFrameWidth {
		return
	}
	y := r.baseY - depth*frameHeight
	delta := r.shareDelta(n)
	tooltip := fmt.Sprintf("%s (before %d, after %d %s, %+.2f%%)",
		n.Name, n.Before, n.After, r.opts.Unit, 100*delta)

	fmt.Fprintf(r.bw,
		`<g><title>%s</title><rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s" rx="1"/>`,
		html.EscapeString(tooltip), x, y, w, frameHeight-1, diffColor(delta))
	if label := fitLabel(n.Name, w); label != "" {
		fmt.Fprintf(r.bw,
			`<text x="%.2f" y="%d" font-size="%d" fill="#222">%s</text>`,
			x+3, y+frameHeight-5, fontSize, html.EscapeString(label))
	}
	fmt.Fprint(r.bw, "</g>\n")

	cx := x
	for _, c := range n.Children {
		r.frame(c, cx, depth+1)
		cx += float64(c.width()) * r.scale
	}
}

// diffColor maps a share delta to the differential palette: white-to-red
// for growth, white-to-blue for shrinkage, saturating at a 10-point share
// swing; near-zero deltas render gray.
func diffColor(delta float64) string {
	const saturation = 0.10
	mag := delta
	if mag < 0 {
		mag = -mag
	}
	if mag < 0.0005 {
		return "rgb(224,224,224)"
	}
	t := mag / saturation
	if t > 1 {
		t = 1
	}
	level := 230 - int(170*t)
	if delta > 0 {
		return fmt.Sprintf("rgb(240,%d,%d)", level, level)
	}
	return fmt.Sprintf("rgb(%d,%d,240)", level, level)
}
