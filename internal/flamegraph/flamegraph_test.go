package flamegraph

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func sampleFolded() map[string]uint64 {
	return map[string]uint64{
		"main":             10,
		"main;work":        20,
		"main;work;getpid": 70,
		"main;init":        5,
		"main;work;rdtsc":  15,
	}
}

func TestBuildTree(t *testing.T) {
	root := Build(sampleFolded())
	if root.Name != RootName {
		t.Errorf("root name = %q", root.Name)
	}
	if root.Total != 120 {
		t.Errorf("root total = %d, want 120", root.Total)
	}
	main := root.Find("main")
	if main == nil {
		t.Fatal("main not found")
	}
	if main.Total != 120 || main.Self != 10 {
		t.Errorf("main total/self = %d/%d, want 120/10", main.Total, main.Self)
	}
	work := root.Find("work")
	if work == nil || work.Total != 105 || work.Self != 20 {
		t.Fatalf("work = %+v, want total=105 self=20", work)
	}
	gp := root.Find("getpid")
	if gp == nil || gp.Total != 70 || gp.Self != 70 {
		t.Fatalf("getpid = %+v", gp)
	}
	if root.Depth() != 4 { // all -> main -> work -> getpid
		t.Errorf("depth = %d, want 4", root.Depth())
	}
	// Children sorted by name.
	if main.Children[0].Name != "init" || main.Children[1].Name != "work" {
		t.Errorf("children unsorted: %v, %v", main.Children[0].Name, main.Children[1].Name)
	}
	if root.Find("nope") != nil {
		t.Error("Find(nope) should be nil")
	}
}

func TestBuildSkipsZeroAndEmpty(t *testing.T) {
	root := Build(map[string]uint64{"": 10, "a": 0, "b": 3})
	if root.Total != 3 {
		t.Errorf("total = %d, want 3", root.Total)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "b" {
		t.Errorf("children = %+v", root.Children)
	}
}

func TestFoldedRoundTrip(t *testing.T) {
	in := sampleFolded()
	var buf bytes.Buffer
	if err := WriteFolded(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Deterministic: sorted lines.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(in) {
		t.Fatalf("wrote %d lines, want %d", len(lines), len(in))
	}
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Errorf("lines unsorted: %q after %q", lines[i], lines[i-1])
		}
	}
	got, err := ReadFolded(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("decoded %d stacks, want %d", len(got), len(in))
	}
	for k, v := range in {
		if got[k] != v {
			t.Errorf("stack %q = %d, want %d", k, got[k], v)
		}
	}
}

func TestReadFoldedMergesDuplicates(t *testing.T) {
	got, err := ReadFolded(strings.NewReader("a;b 5\na;b 7\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got["a;b"] != 12 {
		t.Errorf("a;b = %d, want 12", got["a;b"])
	}
}

func TestReadFoldedErrors(t *testing.T) {
	for _, input := range []string{"noval", " 5", "a;b x"} {
		t.Run(input, func(t *testing.T) {
			if _, err := ReadFolded(strings.NewReader(input)); !errors.Is(err, ErrBadFolded) {
				t.Fatalf("err = %v, want ErrBadFolded", err)
			}
		})
	}
}

func TestRenderSVG(t *testing.T) {
	var buf bytes.Buffer
	err := RenderSVG(&buf, sampleFolded(), SVGOptions{Title: "Test <Graph>", Unit: "ns"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	checks := []string{
		"<svg",
		"</svg>",
		"Test &lt;Graph&gt;", // escaped title
		"getpid",
		"ns,", // unit in tooltip
		"<title>",
	}
	for _, c := range checks {
		if !strings.Contains(out, c) {
			t.Errorf("SVG missing %q", c)
		}
	}
	// getpid is 70/120 ≈ 58.33% of total.
	if !strings.Contains(out, "58.33%") {
		t.Errorf("SVG missing getpid percentage; want 58.33%%")
	}
}

func TestRenderSVGEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderSVG(&buf, nil, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no samples") {
		t.Error("empty SVG should say 'no samples'")
	}
}

func TestRenderSVGTinyFramesDropped(t *testing.T) {
	folded := map[string]uint64{"big": 1_000_000, "big;tiny": 1}
	var buf bytes.Buffer
	if err := RenderSVG(&buf, folded, SVGOptions{Width: 400}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), ">tiny<") {
		t.Error("sub-pixel frame should be dropped")
	}
}

func TestFitLabel(t *testing.T) {
	tests := []struct {
		name  string
		width float64
		want  string
	}{
		{name: "short", width: 200, want: "short"},
		{name: "this_is_a_rather_long_function_name", width: 80, want: "this_is_a.."},
		{name: "x", width: 5, want: ""},
	}
	for _, tt := range tests {
		if got := fitLabel(tt.name, tt.width); got != tt.want {
			t.Errorf("fitLabel(%q, %v) = %q, want %q", tt.name, tt.width, got, tt.want)
		}
	}
}

func TestColorDeterministic(t *testing.T) {
	if colorFor("abc") != colorFor("abc") {
		t.Error("color not deterministic")
	}
	if colorFor("abc") == colorFor("abd") {
		t.Error("distinct names should (almost always) differ in color")
	}
}

func TestTreeConservationProperty(t *testing.T) {
	// Property: for any folded map, every node's Total equals its Self
	// plus the sum of its children's Totals.
	f := func(paths []string, vals []uint16) bool {
		folded := make(map[string]uint64)
		for i, p := range paths {
			if i >= len(vals) {
				break
			}
			clean := strings.Trim(strings.ReplaceAll(p, " ", ""), ";")
			if clean == "" {
				continue
			}
			folded[clean] += uint64(vals[i])
		}
		root := Build(folded)
		return checkConservation(root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func checkConservation(n *Node) bool {
	var childSum uint64
	for _, c := range n.Children {
		if !checkConservation(c) {
			return false
		}
		childSum += c.Total
	}
	return n.Total == n.Self+childSum
}

func TestRenderSVGInteractive(t *testing.T) {
	var buf bytes.Buffer
	err := RenderSVG(&buf, sampleFolded(), SVGOptions{Interactive: true})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<script><![CDATA[",
		`class="fg"`,
		`data-x=`,
		`data-n="getpid"`,
		"function zoom",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("interactive SVG missing %q", want)
		}
	}
	// Non-interactive output stays script-free.
	var plain bytes.Buffer
	if err := RenderSVG(&plain, sampleFolded(), SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "<script") {
		t.Error("plain SVG contains a script")
	}
}
