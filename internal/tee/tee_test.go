package tee

import (
	"testing"
	"time"
)

func TestPlatformPresets(t *testing.T) {
	for _, name := range PlatformNames() {
		t.Run(name, func(t *testing.T) {
			p, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("preset %s invalid: %v", name, err)
			}
			if p.Name != name && !(name == "sgx" && p.Name == "sgx-v1") {
				t.Errorf("preset %s has name %s", name, p.Name)
			}
		})
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) should fail")
	}
	if p, err := ByName("sgx"); err != nil || p.Name != "sgx-v1" {
		t.Errorf("ByName(sgx) = %v, %v; want sgx-v1 alias", p.Name, err)
	}
}

func TestPlatformScale(t *testing.T) {
	p := SGXv1().Scale(2)
	if p.OCallCost != 2*SGXv1().OCallCost {
		t.Errorf("scaled OCallCost = %v, want doubled", p.OCallCost)
	}
	if p.EPCSize != SGXv1().EPCSize {
		t.Errorf("Scale must not change EPC size")
	}
	zero := SGXv1().Scale(0)
	if zero.OCallCost != 0 || zero.PageFaultCost != 0 {
		t.Error("Scale(0) should zero all costs")
	}
}

func TestPlatformValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Platform)
	}{
		{name: "no name", mutate: func(p *Platform) { p.Name = "" }},
		{name: "zero page size", mutate: func(p *Platform) { p.PageSize = 0 }},
		{name: "tiny epc", mutate: func(p *Platform) { p.EPCSize = 1 }},
		{name: "negative cost", mutate: func(p *Platform) { p.OCallCost = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := SGXv1()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate should fail")
			}
		})
	}
}

func newTestEnclave(t *testing.T, p Platform) *Enclave {
	t.Helper()
	e, err := NewEnclave(p, NewHost(1234), WithoutSpin())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEnclaveValidation(t *testing.T) {
	if _, err := NewEnclave(Platform{}, NewHost(1)); err == nil {
		t.Error("invalid platform should fail")
	}
	if _, err := NewEnclave(Native(), nil); err == nil {
		t.Error("nil host should fail")
	}
}

func TestThreadIDsUnique(t *testing.T) {
	e := newTestEnclave(t, SGXv1())
	a, b := e.Thread(), e.Thread()
	if a.ID() == b.ID() {
		t.Errorf("thread IDs collide: %d", a.ID())
	}
	if a.ID() == 0 || b.ID() == 0 {
		t.Error("thread IDs must be non-zero")
	}
	if got := e.Snapshot().ECalls; got != 2 {
		t.Errorf("ECalls = %d, want 2", got)
	}
}

func TestOCallCharges(t *testing.T) {
	e := newTestEnclave(t, SGXv1())
	th := e.Thread()
	before := e.Snapshot()

	ran := false
	th.OCall("test", func() { ran = true })
	if !ran {
		t.Fatal("OCall did not run the host function")
	}
	after := e.Snapshot()
	if after.OCalls != before.OCalls+1 {
		t.Errorf("OCalls = %d, want %d", after.OCalls, before.OCalls+1)
	}
	if delta := after.Charged - before.Charged; delta < SGXv1().OCallCost {
		t.Errorf("charged %v, want >= %v", delta, SGXv1().OCallCost)
	}
}

func TestSyscallsDirectVsOCall(t *testing.T) {
	t.Run("sgx getpid is an ocall", func(t *testing.T) {
		e := newTestEnclave(t, SGXv1())
		th := e.Thread()
		if pid := th.Getpid(); pid != 1234 {
			t.Errorf("Getpid = %d, want 1234", pid)
		}
		if got := e.Snapshot().OCalls; got != 1 {
			t.Errorf("OCalls = %d, want 1", got)
		}
	})
	t.Run("native getpid is direct", func(t *testing.T) {
		e := newTestEnclave(t, Native())
		th := e.Thread()
		if pid := th.Getpid(); pid != 1234 {
			t.Errorf("Getpid = %d, want 1234", pid)
		}
		if got := e.Snapshot().OCalls; got != 0 {
			t.Errorf("OCalls = %d, want 0", got)
		}
	})
	t.Run("sgxv1 rdtsc is an ocall, sgxv2 direct", func(t *testing.T) {
		e1 := newTestEnclave(t, SGXv1())
		e1.Thread().Rdtsc()
		if got := e1.Snapshot().OCalls; got != 1 {
			t.Errorf("SGXv1 rdtsc OCalls = %d, want 1", got)
		}
		e2 := newTestEnclave(t, SGXv2())
		e2.Thread().Rdtsc()
		if got := e2.Snapshot().OCalls; got != 0 {
			t.Errorf("SGXv2 rdtsc OCalls = %d, want 0", got)
		}
	})
	t.Run("clock on sev is direct", func(t *testing.T) {
		e := newTestEnclave(t, SEV())
		e.Thread().ClockNow()
		if got := e.Snapshot().OCalls; got != 0 {
			t.Errorf("SEV clock OCalls = %d, want 0", got)
		}
	})
}

func TestHostFileIO(t *testing.T) {
	h := NewHost(1)
	f, err := h.CreateFile("dev0", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreateFile("bad", -1); err == nil {
		t.Error("negative size should fail")
	}
	if _, err := h.OpenFile("missing"); err == nil {
		t.Error("missing file should fail")
	}
	got, err := h.OpenFile("dev0")
	if err != nil || got != f {
		t.Fatalf("OpenFile = %v, %v", got, err)
	}

	if _, err := f.Pwrite([]byte("hello"), 10); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.Pread(buf, 10); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Errorf("read %q, want hello", buf)
	}
	// Growth on write past end.
	if _, err := f.Pwrite([]byte("x"), 2000); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 2001 {
		t.Errorf("size = %d, want 2001", f.Size())
	}
	// Error paths.
	if _, err := f.Pread(buf, -1); err == nil {
		t.Error("negative read offset should fail")
	}
	if _, err := f.Pread(buf, 99999); err == nil {
		t.Error("read beyond end should fail")
	}
	if _, err := f.Pwrite(buf, -1); err == nil {
		t.Error("negative write offset should fail")
	}
}

func TestEnclaveFileIOCountsOCalls(t *testing.T) {
	e := newTestEnclave(t, SGXv1())
	th := e.Thread()
	f, err := e.Host().CreateFile("disk", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := th.Pwrite(f, []byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := th.Pread(f, buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abc" {
		t.Errorf("read %q", buf)
	}
	if got := e.Snapshot().OCalls; got != 2 {
		t.Errorf("OCalls = %d, want 2", got)
	}
}

func TestAllocValidation(t *testing.T) {
	e := newTestEnclave(t, SGXv1())
	if _, err := e.Alloc(0); err == nil {
		t.Error("Alloc(0) should fail")
	}
	if _, err := e.Alloc(-4); err == nil {
		t.Error("Alloc(-4) should fail")
	}
}

func TestBufferTouchFaultsOncePerResidentPage(t *testing.T) {
	p := SGXv1()
	e := newTestEnclave(t, p)
	th := e.Thread()
	b, err := e.Alloc(3 * p.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Touch(th, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Touch(th, 1); err != nil { // same page: no new fault
		t.Fatal(err)
	}
	if err := b.Touch(th, p.PageSize); err != nil {
		t.Fatal(err)
	}
	if got := e.Snapshot().PageFaults; got != 2 {
		t.Errorf("PageFaults = %d, want 2", got)
	}
	if got := e.ResidentPages(); got != 2 {
		t.Errorf("ResidentPages = %d, want 2", got)
	}
}

func TestBufferTouchErrors(t *testing.T) {
	e := newTestEnclave(t, SGXv1())
	th := e.Thread()
	b, err := e.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Touch(th, -1); err == nil {
		t.Error("negative offset should fail")
	}
	if err := b.Touch(th, 100); err == nil {
		t.Error("offset == len should fail")
	}
	if err := b.TouchRange(th, 0, 0); err == nil {
		t.Error("zero-length range should fail")
	}
	if err := b.TouchRange(th, 90, 20); err == nil {
		t.Error("overflowing range should fail")
	}
}

func TestEPCEviction(t *testing.T) {
	// Platform with a 4-page EPC: touching 6 distinct pages must evict,
	// and re-touching an evicted page must fault again.
	p := SGXv1()
	p.EPCSize = 4 * p.PageSize
	e := newTestEnclave(t, p)
	th := e.Thread()
	b, err := e.Alloc(6 * p.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := b.Touch(th, i*p.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Snapshot().PageFaults; got != 6 {
		t.Fatalf("PageFaults = %d, want 6", got)
	}
	if got := e.ResidentPages(); got != 4 {
		t.Fatalf("ResidentPages = %d, want 4", got)
	}
	// Page 0 was evicted first (FIFO): touching it faults again.
	if err := b.Touch(th, 0); err != nil {
		t.Fatal(err)
	}
	if got := e.Snapshot().PageFaults; got != 7 {
		t.Errorf("PageFaults after re-touch = %d, want 7", got)
	}
}

func TestWorkingSetWithinEPCNeverEvicts(t *testing.T) {
	p := SGXv1()
	p.EPCSize = 16 * p.PageSize
	e := newTestEnclave(t, p)
	th := e.Thread()
	b, err := e.Alloc(8 * p.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		for i := 0; i < 8; i++ {
			if err := b.Touch(th, i*p.PageSize); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := e.Snapshot().PageFaults; got != 8 {
		t.Errorf("PageFaults = %d, want 8 (one per page, ever)", got)
	}
}

func TestTouchRangeSpansPages(t *testing.T) {
	p := SGXv1()
	e := newTestEnclave(t, p)
	th := e.Thread()
	b, err := e.Alloc(4 * p.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Range crossing 3 pages.
	if err := b.TouchRange(th, p.PageSize-10, 2*p.PageSize); err != nil {
		t.Fatal(err)
	}
	if got := e.Snapshot().PageFaults; got != 3 {
		t.Errorf("PageFaults = %d, want 3", got)
	}
}

func TestInterruptDebtPaidAtSafepoint(t *testing.T) {
	e := newTestEnclave(t, SGXv1())
	th := e.Thread()
	before := e.Snapshot().Charged
	th.AddInterruptDebt(time.Millisecond)
	th.AddInterruptDebt(0) // no-op
	if got := e.Snapshot().AEXs; got != 1 {
		t.Errorf("AEXs = %d, want 1", got)
	}
	th.Safepoint()
	if delta := e.Snapshot().Charged - before; delta < time.Millisecond {
		t.Errorf("charged %v after safepoint, want >= 1ms", delta)
	}
}

func TestExitSettlesDebt(t *testing.T) {
	e := newTestEnclave(t, SGXv1())
	th := e.Thread()
	th.AddInterruptDebt(time.Microsecond)
	before := e.Snapshot().Charged
	th.Exit()
	if delta := e.Snapshot().Charged - before; delta < time.Microsecond {
		t.Errorf("Exit settled only %v", delta)
	}
}

func TestSpinningEnclaveActuallyDelays(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	p := Native()
	p.Name = "slow-ocall"
	p.DirectSyscalls = false
	p.OCallCost = 2 * time.Millisecond
	e, err := NewEnclave(p, NewHost(1))
	if err != nil {
		t.Fatal(err)
	}
	th := e.Thread()
	t0 := time.Now()
	th.Getpid()
	if elapsed := time.Since(t0); elapsed < 2*time.Millisecond {
		t.Errorf("OCall took %v, want >= 2ms of injected penalty", elapsed)
	}
}

func TestHostClockMonotonic(t *testing.T) {
	h := NewHost(1)
	a := h.NowNanos()
	b := h.NowNanos()
	if b < a {
		t.Errorf("host clock went backwards: %d -> %d", a, b)
	}
}

func TestOCallCountsByName(t *testing.T) {
	e := newTestEnclave(t, SGXv1())
	th := e.Thread()
	th.Getpid()
	th.Getpid()
	th.Rdtsc()
	th.ClockNow()
	counts := e.OCallCounts()
	if counts["getpid"] != 2 {
		t.Errorf("getpid count = %d, want 2", counts["getpid"])
	}
	if counts["rdtsc"] != 1 {
		t.Errorf("rdtsc count = %d, want 1", counts["rdtsc"])
	}
	if counts["clock_gettime"] != 1 {
		t.Errorf("clock_gettime count = %d, want 1", counts["clock_gettime"])
	}
	// Returned map is a copy.
	counts["getpid"] = 99
	if e.OCallCounts()["getpid"] != 2 {
		t.Error("OCallCounts exposed internal state")
	}
}

func TestSyscallCostCharged(t *testing.T) {
	e := newTestEnclave(t, SGXv1())
	th := e.Thread()
	before := e.Snapshot().Charged
	th.Getpid()
	delta := e.Snapshot().Charged - before
	want := SGXv1().OCallCost + SGXv1().SyscallCost
	if delta < want {
		t.Errorf("getpid charged %v, want >= OCall+Syscall = %v", delta, want)
	}
}
