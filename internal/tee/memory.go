package tee

import (
	"fmt"
)

// Buffer is enclave-protected memory. Its pages count against the
// platform's EPC budget: touching a non-resident page triggers secure
// paging (evicting the oldest resident page FIFO-style and charging the
// page-fault cost), and every explicit touch pays the memory-encryption
// penalty. Workloads call Touch/TouchRange around their accesses; the
// backing bytes themselves are reachable via Data for bulk operations.
type Buffer struct {
	encl     *Enclave
	data     []byte
	basePage uint64
}

// Alloc reserves n bytes of enclave memory. Allocation itself is cheap;
// costs accrue on first touch of each page (demand paging).
func (e *Enclave) Alloc(n int) (*Buffer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tee: allocation size must be positive, got %d", n)
	}
	pages := uint64((n + e.platform.PageSize - 1) / e.platform.PageSize)
	e.pageMu.Lock()
	base := e.nextPage
	e.nextPage += pages
	e.pageMu.Unlock()
	return &Buffer{encl: e, data: make([]byte, n), basePage: base}, nil
}

// Len returns the buffer size in bytes.
func (b *Buffer) Len() int { return len(b.data) }

// Data exposes the backing bytes for bulk access. Pair raw accesses with
// Touch/TouchRange so the cost model applies.
func (b *Buffer) Data() []byte { return b.data }

// Touch models one access at byte offset off by thread t, charging paging
// and encryption penalties as needed.
func (b *Buffer) Touch(t *Thread, off int) error {
	if off < 0 || off >= len(b.data) {
		return fmt.Errorf("tee: touch offset %d out of range [0,%d)", off, len(b.data))
	}
	b.touchPage(t, b.basePage+uint64(off/b.encl.platform.PageSize))
	t.charge(b.encl.platform.MemAccessCost)
	return nil
}

// TouchRange models a sequential access of length n starting at off,
// charging per crossed page.
func (b *Buffer) TouchRange(t *Thread, off, n int) error {
	if n <= 0 {
		return fmt.Errorf("tee: touch range length must be positive, got %d", n)
	}
	if off < 0 || off+n > len(b.data) {
		return fmt.Errorf("tee: touch range [%d,%d) out of range [0,%d)", off, off+n, len(b.data))
	}
	ps := b.encl.platform.PageSize
	first := off / ps
	last := (off + n - 1) / ps
	for p := first; p <= last; p++ {
		b.touchPage(t, b.basePage+uint64(p))
		t.charge(b.encl.platform.MemAccessCost)
	}
	return nil
}

// touchPage brings a page into the EPC, evicting FIFO-style when the
// budget is exceeded.
func (b *Buffer) touchPage(t *Thread, page uint64) {
	e := b.encl
	e.pageMu.Lock()
	if _, ok := e.resident[page]; ok {
		e.pageMu.Unlock()
		return
	}
	for len(e.fifo) >= e.maxPages && len(e.fifo) > 0 {
		victim := e.fifo[0]
		e.fifo = e.fifo[1:]
		delete(e.resident, victim)
	}
	e.resident[page] = struct{}{}
	e.fifo = append(e.fifo, page)
	e.pageMu.Unlock()

	e.stats.PageFaults.Add(1)
	t.charge(e.platform.PageFaultCost)
}

// ResidentPages returns how many enclave pages are currently in the EPC.
func (e *Enclave) ResidentPages() int {
	e.pageMu.Lock()
	defer e.pageMu.Unlock()
	return len(e.resident)
}
