package tee

import (
	"fmt"
	"sync"
	"time"
)

// Host models the untrusted side of the machine: the OS services an
// enclave must reach through OCALLs — process identity, the clock, and a
// simple block-addressed file store standing in for host storage.
type Host struct {
	pid   int
	start time.Time

	mu    sync.RWMutex
	files map[string]*HostFile
}

// NewHost returns a host with the given (simulated) process ID.
func NewHost(pid int) *Host {
	return &Host{
		pid:   pid,
		start: time.Now(),
		files: make(map[string]*HostFile),
	}
}

// Pid returns the host-assigned process ID (the getpid result).
func (h *Host) Pid() int { return h.pid }

// NowNanos returns monotonic nanoseconds since host creation (the rdtsc /
// clock_gettime stand-in).
func (h *Host) NowNanos() uint64 { return uint64(time.Since(h.start)) }

// CreateFile allocates a host file of the given size, truncating any
// existing file with the same name.
func (h *Host) CreateFile(name string, size int) (*HostFile, error) {
	if size < 0 {
		return nil, fmt.Errorf("tee: negative file size %d", size)
	}
	f := &HostFile{name: name, data: make([]byte, size)}
	h.mu.Lock()
	h.files[name] = f
	h.mu.Unlock()
	return f, nil
}

// OpenFile returns an existing host file.
func (h *Host) OpenFile(name string) (*HostFile, error) {
	h.mu.RLock()
	f, ok := h.files[name]
	h.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("tee: host file %q not found", name)
	}
	return f, nil
}

// HostFile is an in-memory host-side file supporting positional I/O.
type HostFile struct {
	name string

	mu   sync.RWMutex
	data []byte
}

// Name returns the file name.
func (f *HostFile) Name() string { return f.name }

// Size returns the current file size.
func (f *HostFile) Size() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.data)
}

// Pread copies len(p) bytes at offset off into p.
func (f *HostFile) Pread(p []byte, off int64) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if off < 0 {
		return 0, fmt.Errorf("tee: %s: negative offset %d", f.name, off)
	}
	if off >= int64(len(f.data)) {
		return 0, fmt.Errorf("tee: %s: read at %d beyond size %d", f.name, off, len(f.data))
	}
	n := copy(p, f.data[off:])
	return n, nil
}

// Pwrite copies p into the file at offset off, growing it if needed.
func (f *HostFile) Pwrite(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("tee: %s: negative offset %d", f.name, off)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if end := off + int64(len(p)); end > int64(len(f.data)) {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:], p)
	return len(p), nil
}
