// Package tee simulates trusted execution environments. It is the substrate
// that stands in for Intel SGX + SCONE (and the other TEEs the paper
// targets): workloads execute on enclave threads whose interactions with
// the outside world — syscalls, clock reads, I/O — pay the platform's
// world-switch costs, and whose memory accesses beyond the protected-memory
// budget pay secure-paging costs. Costs are injected as real busy-wait time
// so they are observable by any wall-clock profiler, exactly like the
// micro-architectural penalties they model.
package tee

import (
	"fmt"
	"time"
)

// Platform describes the cost model of one TEE implementation.
type Platform struct {
	// Name identifies the platform in reports.
	Name string

	// ECallCost is charged when entering the enclave (world switch in).
	ECallCost time.Duration
	// OCallCost is charged for every enclave exit + re-entry pair
	// (syscall proxying, TLB flush included).
	OCallCost time.Duration
	// AEXCost is charged for an asynchronous enclave exit (interrupt,
	// e.g. a profiler sampling tick landing on an enclave thread).
	AEXCost time.Duration
	// SyscallCost is charged on top of OCallCost for proxied syscalls
	// (getpid, clock_gettime, pread/pwrite): the shielded syscall path —
	// argument marshalling, kernel service, result checks — that SCONE
	// and similar runtimes add.
	SyscallCost time.Duration

	// EPCSize is the protected-memory budget in bytes. Enclave pages
	// beyond this budget are securely swapped to host memory.
	EPCSize int
	// PageSize is the paging granularity.
	PageSize int
	// PageFaultCost is charged per securely-paged-in page.
	PageFaultCost time.Duration
	// MemAccessCost is the memory-encryption-engine penalty charged per
	// explicitly touched page-sized range of enclave memory.
	MemAccessCost time.Duration

	// DirectSyscalls reports whether the environment can issue syscalls
	// without an OCALL (true only for native execution).
	DirectSyscalls bool
	// DirectTSC reports whether the timestamp counter is readable from
	// inside (rdtsc is illegal inside SGXv1 enclaves).
	DirectTSC bool
}

// Default cost figures. They track the relative magnitudes reported for
// SGX-class hardware (a world switch costs thousands of cycles, secure
// paging tens of thousands) scaled to keep simulated runs fast; the
// absolute values are not calibrated to any specific CPU.
const defaultPageSize = 4096

// Native returns a zero-cost platform: direct syscalls, direct TSC, no
// paging penalty. It models running the application outside any TEE.
func Native() Platform {
	return Platform{
		Name:           "native",
		PageSize:       defaultPageSize,
		EPCSize:        1 << 62,
		DirectSyscalls: true,
		DirectTSC:      true,
	}
}

// SGXv1 models a first-generation Intel SGX enclave (the paper's testbed):
// expensive world switches, ~93 MiB usable EPC, very expensive EPC paging,
// no rdtsc inside the enclave.
func SGXv1() Platform {
	return Platform{
		Name:          "sgx-v1",
		ECallCost:     2500 * time.Nanosecond,
		OCallCost:     3500 * time.Nanosecond,
		AEXCost:       4500 * time.Nanosecond,
		SyscallCost:   15 * time.Microsecond,
		EPCSize:       93 << 20,
		PageSize:      defaultPageSize,
		PageFaultCost: 12 * time.Microsecond,
		MemAccessCost: 30 * time.Nanosecond,
	}
}

// SGXv2 models SGX with EDMM and a larger EPC: same switch costs, much
// larger protected memory, and rdtsc permitted inside the enclave.
func SGXv2() Platform {
	p := SGXv1()
	p.Name = "sgx-v2"
	p.EPCSize = 4 << 30
	p.DirectTSC = true
	return p
}

// TrustZone models an ARM TrustZone secure world: cheaper world switches
// (SMC), no EPC-style paging but also no memory encryption by default.
func TrustZone() Platform {
	return Platform{
		Name:        "trustzone",
		ECallCost:   800 * time.Nanosecond,
		OCallCost:   1200 * time.Nanosecond,
		AEXCost:     1500 * time.Nanosecond,
		SyscallCost: 2 * time.Microsecond,
		EPCSize:     1 << 62,
		PageSize:    defaultPageSize,
		DirectTSC:   true,
	}
}

// SEV models an AMD SEV encrypted VM: syscalls stay inside the guest
// (cheap), memory encryption penalty on access, no paging cliff.
func SEV() Platform {
	return Platform{
		Name:           "sev",
		OCallCost:      300 * time.Nanosecond,
		AEXCost:        2000 * time.Nanosecond,
		EPCSize:        1 << 62,
		PageSize:       defaultPageSize,
		MemAccessCost:  25 * time.Nanosecond,
		DirectSyscalls: true,
		DirectTSC:      true,
	}
}

// Keystone models a RISC-V Keystone enclave: security-monitor mediated
// world switches, modest protected memory.
func Keystone() Platform {
	return Platform{
		Name:          "keystone",
		ECallCost:     1800 * time.Nanosecond,
		OCallCost:     2600 * time.Nanosecond,
		AEXCost:       3000 * time.Nanosecond,
		SyscallCost:   8 * time.Microsecond,
		EPCSize:       64 << 20,
		PageSize:      defaultPageSize,
		PageFaultCost: 9 * time.Microsecond,
	}
}

// Scale returns a copy of the platform with all time costs multiplied by f.
// Benches use it to compress or stretch simulated penalties.
func (p Platform) Scale(f float64) Platform {
	scale := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * f)
	}
	p.ECallCost = scale(p.ECallCost)
	p.OCallCost = scale(p.OCallCost)
	p.AEXCost = scale(p.AEXCost)
	p.SyscallCost = scale(p.SyscallCost)
	p.PageFaultCost = scale(p.PageFaultCost)
	p.MemAccessCost = scale(p.MemAccessCost)
	return p
}

// Validate reports configuration errors.
func (p Platform) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("tee: platform has no name")
	}
	if p.PageSize <= 0 {
		return fmt.Errorf("tee: platform %s: page size must be positive, got %d", p.Name, p.PageSize)
	}
	if p.EPCSize < p.PageSize {
		return fmt.Errorf("tee: platform %s: EPC %d smaller than one page", p.Name, p.EPCSize)
	}
	if p.ECallCost < 0 || p.OCallCost < 0 || p.AEXCost < 0 ||
		p.SyscallCost < 0 || p.PageFaultCost < 0 || p.MemAccessCost < 0 {
		return fmt.Errorf("tee: platform %s: negative cost", p.Name)
	}
	return nil
}

// ByName returns the preset platform with the given name.
func ByName(name string) (Platform, error) {
	switch name {
	case "native":
		return Native(), nil
	case "sgx-v1", "sgx":
		return SGXv1(), nil
	case "sgx-v2":
		return SGXv2(), nil
	case "trustzone":
		return TrustZone(), nil
	case "sev":
		return SEV(), nil
	case "keystone":
		return Keystone(), nil
	default:
		return Platform{}, fmt.Errorf("tee: unknown platform %q", name)
	}
}

// PlatformNames lists the available presets.
func PlatformNames() []string {
	return []string{"native", "sgx-v1", "sgx-v2", "trustzone", "sev", "keystone"}
}
