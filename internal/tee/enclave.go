package tee

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Enclave is one simulated trusted execution environment instance bound to
// a host. Workload goroutines obtain a Thread and issue all outside-world
// interactions through it so the platform cost model applies.
type Enclave struct {
	platform Platform
	host     *Host
	spin     bool
	listener func(TransitionEvent)

	stats Stats

	nextThread atomic.Uint64

	// Per-OCALL-name accounting (the paper's Fig 6 view: which host
	// call is eating the run).
	ocallMu     sync.Mutex
	ocallByName map[string]uint64

	// EPC residency tracking (FIFO eviction).
	pageMu   sync.Mutex
	resident map[uint64]struct{}
	fifo     []uint64
	maxPages int
	nextPage uint64
}

// Stats aggregates enclave activity. All fields are written atomically.
type Stats struct {
	ECalls     atomic.Uint64
	OCalls     atomic.Uint64
	AEXs       atomic.Uint64
	PageFaults atomic.Uint64
	// ChargedNanos is the total simulated penalty time injected.
	ChargedNanos atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	ECalls     uint64
	OCalls     uint64
	AEXs       uint64
	PageFaults uint64
	Charged    time.Duration
}

// Transition is an enclave boundary-crossing kind.
type Transition int

// Transition kinds.
const (
	TransitionECall Transition = iota + 1
	TransitionOCall
	TransitionAEX
)

// String names the transition.
func (t Transition) String() string {
	switch t {
	case TransitionECall:
		return "ecall"
	case TransitionOCall:
		return "ocall"
	case TransitionAEX:
		return "aex"
	default:
		return fmt.Sprintf("transition(%d)", int(t))
	}
}

// TransitionEvent describes one boundary crossing, delivered to the
// enclave's transition listener (how transition-level profilers like
// sgx-perf observe an enclave from the outside).
type TransitionEvent struct {
	// Kind is the crossing type.
	Kind Transition
	// Name is the OCALL name ("" for ECALLs/AEXs).
	Name string
	// Thread is the enclave thread ID (0 if not yet assigned).
	Thread uint64
	// At is the host clock at the crossing, in nanoseconds.
	At uint64
	// Cost is the simulated penalty charged for the crossing.
	Cost time.Duration
}

// EnclaveOption configures NewEnclave.
type EnclaveOption interface {
	applyEnclave(*enclaveOptions)
}

type enclaveOptions struct {
	spin     bool
	listener func(TransitionEvent)
}

type withoutSpinOption struct{}

func (withoutSpinOption) applyEnclave(o *enclaveOptions) { o.spin = false }

// WithoutSpin records charged penalties in the stats without busy-waiting.
// Tests use it to keep simulated platforms fast and deterministic; benches
// use real spinning so penalties are visible to wall-clock measurements.
func WithoutSpin() EnclaveOption { return withoutSpinOption{} }

type listenerOption struct {
	fn func(TransitionEvent)
}

func (o listenerOption) applyEnclave(opts *enclaveOptions) { opts.listener = o.fn }

// WithTransitionListener delivers every boundary crossing to fn (must be
// safe for concurrent calls). Transition-level profilers subscribe here.
func WithTransitionListener(fn func(TransitionEvent)) EnclaveOption {
	return listenerOption{fn: fn}
}

// NewEnclave creates an enclave on host with the given platform model.
func NewEnclave(p Platform, host *Host, opts ...EnclaveOption) (*Enclave, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if host == nil {
		return nil, fmt.Errorf("tee: nil host")
	}
	o := enclaveOptions{spin: true}
	for _, opt := range opts {
		opt.applyEnclave(&o)
	}
	return &Enclave{
		platform:    p,
		host:        host,
		spin:        o.spin,
		listener:    o.listener,
		ocallByName: make(map[string]uint64),
		resident:    make(map[uint64]struct{}),
		maxPages:    p.EPCSize / p.PageSize,
	}, nil
}

// Platform returns the enclave's cost model.
func (e *Enclave) Platform() Platform { return e.platform }

// Host returns the untrusted host the enclave is bound to.
func (e *Enclave) Host() *Host { return e.host }

// Snapshot returns the current activity counters.
func (e *Enclave) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		ECalls:     e.stats.ECalls.Load(),
		OCalls:     e.stats.OCalls.Load(),
		AEXs:       e.stats.AEXs.Load(),
		PageFaults: e.stats.PageFaults.Load(),
		Charged:    time.Duration(e.stats.ChargedNanos.Load()),
	}
}

// payDebtThreshold bounds how much penalty time a thread accumulates before
// actually spinning it off, amortizing timer reads on the hot path.
const payDebtThreshold = 20 * time.Microsecond

// Thread is one enclave execution context. Each workload goroutine must use
// its own Thread; Threads are not safe for concurrent use (matching real
// thread semantics), except for AddInterruptDebt which may be called from a
// sampler goroutine.
type Thread struct {
	id   uint64
	encl *Enclave

	// debt is penalty time accrued but not yet spun off. interruptDebt is
	// written by external samplers (AEX model).
	debt          time.Duration
	interruptDebt atomic.Int64
}

// Thread enters the enclave (charging the ECALL cost) and returns a new
// execution context.
func (e *Enclave) Thread() *Thread {
	t := &Thread{id: e.nextThread.Add(1), encl: e}
	e.stats.ECalls.Add(1)
	e.notify(TransitionEvent{
		Kind:   TransitionECall,
		Thread: t.id,
		At:     e.host.NowNanos(),
		Cost:   e.platform.ECallCost,
	})
	t.charge(e.platform.ECallCost)
	return t
}

func (e *Enclave) notify(ev TransitionEvent) {
	if e.listener != nil {
		e.listener(ev)
	}
}

// ID returns the thread's enclave-unique identifier (≥ 1).
func (t *Thread) ID() uint64 { return t.id }

// Enclave returns the owning enclave.
func (t *Thread) Enclave() *Enclave { return t.encl }

// charge accrues penalty time and pays it off once above the threshold.
func (t *Thread) charge(d time.Duration) {
	if d <= 0 {
		return
	}
	t.encl.stats.ChargedNanos.Add(uint64(d))
	if !t.encl.spin {
		return
	}
	t.debt += d
	if t.debt >= payDebtThreshold {
		t.payNow()
	}
}

// payNow spins off all accumulated debt.
func (t *Thread) payNow() {
	d := t.debt
	t.debt = 0
	if d <= 0 {
		return
	}
	spinFor(d)
}

// Safepoint settles interrupt debt injected by samplers and any residual
// charge. Long-running enclave code without OCALLs should call it
// periodically (the simulator's stand-in for being interruptible).
func (t *Thread) Safepoint() {
	if d := t.interruptDebt.Swap(0); d > 0 {
		t.charge(time.Duration(d))
	}
}

// Exit settles all outstanding debt; call when the thread leaves the
// enclave for good.
func (t *Thread) Exit() {
	t.Safepoint()
	if t.encl.spin {
		t.payNow()
	}
}

// AddInterruptDebt injects an asynchronous-exit penalty (an AEX caused by
// an interrupt such as a sampling timer). Safe to call from other
// goroutines; the thread pays at its next safepoint or OCALL.
func (t *Thread) AddInterruptDebt(d time.Duration) {
	if d <= 0 {
		return
	}
	t.encl.stats.AEXs.Add(1)
	t.encl.notify(TransitionEvent{
		Kind:   TransitionAEX,
		Thread: t.id,
		At:     t.encl.host.NowNanos(),
		Cost:   d,
	})
	t.interruptDebt.Add(int64(d))
}

// OCallCounts returns per-OCALL-name invocation counts.
func (e *Enclave) OCallCounts() map[string]uint64 {
	e.ocallMu.Lock()
	defer e.ocallMu.Unlock()
	out := make(map[string]uint64, len(e.ocallByName))
	for k, v := range e.ocallByName {
		out[k] = v
	}
	return out
}

// OCall performs a world switch to run fn on the host, charging the
// platform OCALL cost and recording the call under name in the per-OCALL
// accounting.
func (t *Thread) OCall(name string, fn func()) {
	t.encl.ocallMu.Lock()
	t.encl.ocallByName[name]++
	t.encl.ocallMu.Unlock()
	t.encl.stats.OCalls.Add(1)
	t.encl.notify(TransitionEvent{
		Kind:   TransitionOCall,
		Name:   name,
		Thread: t.id,
		At:     t.encl.host.NowNanos(),
		Cost:   t.encl.platform.OCallCost,
	})
	t.Safepoint()
	t.charge(t.encl.platform.OCallCost)
	if t.encl.spin {
		// OCALLs are synchronous world switches; pay immediately so the
		// penalty lands where the profiler will observe it.
		t.payNow()
	}
	fn()
}

// syscall runs fn on the host through an OCALL and charges the shielded
// syscall-path cost on top of the world switch.
func (t *Thread) syscall(name string, fn func()) {
	t.OCall(name, fn)
	t.charge(t.encl.platform.SyscallCost)
	if t.encl.spin {
		t.payNow()
	}
}

// Getpid returns the host process ID. Inside a TEE without direct syscalls
// this is a full proxied syscall — the expensive call the SPDK case study
// eliminates.
func (t *Thread) Getpid() int {
	if t.encl.platform.DirectSyscalls {
		return t.encl.host.Pid()
	}
	var pid int
	t.syscall("getpid", func() { pid = t.encl.host.Pid() })
	return pid
}

// Rdtsc returns the host timestamp counter. On platforms where rdtsc is
// illegal inside the enclave (SGXv1) this is an OCALL.
func (t *Thread) Rdtsc() uint64 {
	if t.encl.platform.DirectTSC {
		return t.encl.host.NowNanos()
	}
	var ts uint64
	t.OCall("rdtsc", func() { ts = t.encl.host.NowNanos() })
	return ts
}

// ClockNow returns wall-clock nanoseconds via the OS clock; always a
// syscall, hence an OCALL on TEE platforms.
func (t *Thread) ClockNow() uint64 {
	if t.encl.platform.DirectSyscalls {
		return t.encl.host.NowNanos()
	}
	var ts uint64
	t.syscall("clock_gettime", func() { ts = t.encl.host.NowNanos() })
	return ts
}

// Pread reads from a host file through an OCALL (direct I/O is forbidden
// inside TEEs).
func (t *Thread) Pread(f *HostFile, p []byte, off int64) (int, error) {
	var (
		n   int
		err error
	)
	if t.encl.platform.DirectSyscalls {
		return f.Pread(p, off)
	}
	t.syscall("pread", func() { n, err = f.Pread(p, off) })
	return n, err
}

// Pwrite writes to a host file through an OCALL.
func (t *Thread) Pwrite(f *HostFile, p []byte, off int64) (int, error) {
	var (
		n   int
		err error
	)
	if t.encl.platform.DirectSyscalls {
		return f.Pwrite(p, off)
	}
	t.syscall("pwrite", func() { n, err = f.Pwrite(p, off) })
	return n, err
}

// spinFor busy-waits for roughly d. A busy wait (rather than sleep) keeps
// the penalty on-CPU like the modeled hardware stalls.
func spinFor(d time.Duration) {
	t0 := time.Now()
	for time.Since(t0) < d {
		// Busy wait.
	}
}
