//go:build linux && directio

package recorder

import (
	"fmt"
	"io"
	"os"
	"syscall"
	"unsafe"
)

// dataFile is the destination a checkpoint pass streams its bundle into
// (see directio_default.go). This build variant opens it with O_DIRECT.
type dataFile interface {
	io.Writer
	Sync() error
	Close() error
}

// directBlock is the alignment unit O_DIRECT requires for offsets, lengths
// and user buffers. 4096 covers every modern block device (and matches the
// filesystem page size logical-block upper bound).
const directBlock = 4096

// createDataFile creates the checkpoint data file with O_DIRECT, bypassing
// the page cache: a large checkpoint stream then does not evict the
// profiled application's working set, at the cost of the kernel's write
// coalescing. Writes are accumulated into an aligned block buffer and
// issued in whole blocks; Close pads the final partial block, then
// truncates the file back to the logical length so the on-disk bundle is
// byte-identical to the buffered-I/O build's.
func createDataFile(path string) (dataFile, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC|syscall.O_DIRECT, 0o644)
	if err != nil {
		// O_DIRECT is per-filesystem (tmpfs, for one, rejects it); fall
		// back to buffered I/O rather than failing the checkpoint.
		plain, perr := os.Create(path)
		if perr != nil {
			return nil, err
		}
		return plain, nil
	}
	return &directFile{f: f, buf: alignedBlock(directBlock * 16)}, nil
}

// directFile adapts a stream of arbitrary-length Writes onto whole-block
// O_DIRECT writes.
type directFile struct {
	f    *os.File
	buf  []byte // aligned accumulation buffer, multiple of directBlock
	fill int
	size int64 // logical bytes written (file is truncated to this on Close)
	err  error // sticky
}

// alignedBlock returns a size-byte slice whose base address is aligned to
// directBlock, as O_DIRECT demands of user buffers.
func alignedBlock(size int) []byte {
	raw := make([]byte, size+directBlock)
	off := int(directBlock - (uintptr(unsafe.Pointer(&raw[0])) & (directBlock - 1)))
	if off == directBlock {
		off = 0
	}
	return raw[off : off+size]
}

func (d *directFile) Write(p []byte) (int, error) {
	if d.err != nil {
		return 0, d.err
	}
	total := len(p)
	for len(p) > 0 {
		n := copy(d.buf[d.fill:], p)
		d.fill += n
		p = p[n:]
		if d.fill == len(d.buf) {
			if err := d.flushBlocks(d.fill); err != nil {
				return total - len(p), err
			}
		}
	}
	d.size += int64(total)
	return total, nil
}

// flushBlocks writes the first n buffered bytes (a multiple of
// directBlock) to the file and resets the fill.
func (d *directFile) flushBlocks(n int) error {
	if _, err := d.f.Write(d.buf[:n]); err != nil {
		d.err = err
		return err
	}
	d.fill = 0
	return nil
}

func (d *directFile) Sync() error {
	if d.err != nil {
		return d.err
	}
	return d.f.Sync()
}

func (d *directFile) Close() error {
	if d.err != nil {
		d.f.Close()
		return d.err
	}
	// Pad the trailing partial block with zeros, write it aligned, then
	// truncate back to the logical size (ftruncate needs no alignment).
	if d.fill > 0 {
		padded := (d.fill + directBlock - 1) &^ (directBlock - 1)
		for i := d.fill; i < padded; i++ {
			d.buf[i] = 0
		}
		if err := d.flushBlocks(padded); err != nil {
			d.f.Close()
			return err
		}
	}
	if err := d.f.Truncate(d.size); err != nil {
		d.f.Close()
		return fmt.Errorf("recorder: direct-io truncate: %w", err)
	}
	return d.f.Close()
}
