package recorder

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// TestDecodersNeverPanicOnGarbage feeds arbitrary bytes to every decoder
// in the persistence pipeline: they must return errors, never panic, for
// any input (a corrupted or hostile bundle must not take the analyzer
// down).
func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		// Each decoder either succeeds or errors; panics fail the test
		// via the harness.
		_, _, _ = ReadBundle(bytes.NewReader(data))
		_, _ = shmlog.Read(bytes.NewReader(data))
		_, _ = symtab.Read(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodersNeverPanicOnBitFlips corrupts valid bundles with random bit
// flips and truncations: decoding must stay panic-free, and when it
// succeeds the result must still be internally consistent.
func TestDecodersNeverPanicOnBitFlips(t *testing.T) {
	// Build one valid bundle.
	tab := symtab.New()
	fn := tab.MustRegister("victim", 16, "v.go", 1)
	log, err := shmlog.New(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		kind := shmlog.KindCall
		if i%2 == 1 {
			kind = shmlog.KindReturn
		}
		if err := log.Append(shmlog.Entry{Kind: kind, Counter: uint64(i), Addr: fn, ThreadID: 1}); err != nil {
			t.Fatal(err)
		}
	}
	var valid bytes.Buffer
	if err := WriteBundle(&valid, tab, log); err != nil {
		t.Fatal(err)
	}
	base := valid.Bytes()

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		corrupted := make([]byte, len(base))
		copy(corrupted, base)
		// Random corruption: flips, truncation, or both.
		switch trial % 3 {
		case 0:
			for f := 0; f < 1+rng.Intn(8); f++ {
				pos := rng.Intn(len(corrupted))
				corrupted[pos] ^= 1 << rng.Intn(8)
			}
		case 1:
			corrupted = corrupted[:rng.Intn(len(corrupted))]
		default:
			if len(corrupted) > 2 {
				corrupted = corrupted[:1+rng.Intn(len(corrupted)-1)]
			}
			for f := 0; f < 2 && len(corrupted) > 0; f++ {
				pos := rng.Intn(len(corrupted))
				corrupted[pos] ^= 0xFF
			}
		}
		gotTab, gotLog, err := ReadBundle(bytes.NewReader(corrupted))
		if err != nil {
			continue // rejected, fine
		}
		// Decoded despite corruption: must still be self-consistent.
		if gotLog.Len() > gotLog.Capacity() {
			t.Fatalf("trial %d: decoded log len %d beyond capacity %d",
				trial, gotLog.Len(), gotLog.Capacity())
		}
		for i := 0; i < gotLog.Len(); i++ {
			if _, err := gotLog.Entry(i); err != nil {
				t.Fatalf("trial %d: entry %d unreadable: %v", trial, i, err)
			}
		}
		if gotTab.Len() == 0 {
			t.Fatalf("trial %d: decoded table has no symbols", trial)
		}
	}
}
