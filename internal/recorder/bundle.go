package recorder

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// A profile bundle packages the two artifacts a measurement produces — the
// symbol side file (stage 1 output) and the binary log (stage 2 output) —
// into one stream the analyzer consumes. Format:
//
//	TEEPERF-BUNDLE 1\n
//	section syms <byte length>\n
//	<symbol side file bytes>
//	section log <byte length>\n
//	<binary log bytes>
const bundleHeader = "TEEPERF-BUNDLE 1"

// ErrBadBundle is returned when decoding a malformed bundle.
var ErrBadBundle = errors.New("recorder: bad bundle")

// WriteBundle serializes the symbol table and log to w.
func WriteBundle(w io.Writer, tab *symtab.Table, log *shmlog.Log) error {
	if tab == nil || log == nil {
		return errors.New("recorder: nil table or log")
	}
	var syms, logBuf bytes.Buffer
	if _, err := tab.WriteTo(&syms); err != nil {
		return fmt.Errorf("recorder: encode symbols: %w", err)
	}
	if _, err := log.WriteTo(&logBuf); err != nil {
		return fmt.Errorf("recorder: encode log: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\n", bundleHeader); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "section syms %d\n", syms.Len()); err != nil {
		return err
	}
	if _, err := bw.Write(syms.Bytes()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "section log %d\n", logBuf.Len()); err != nil {
		return err
	}
	if _, err := bw.Write(logBuf.Bytes()); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBundle decodes a bundle written by WriteBundle.
func ReadBundle(r io.Reader) (*symtab.Table, *shmlog.Log, error) {
	br := bufio.NewReader(r)
	header, err := readLine(br)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: header: %v", ErrBadBundle, err)
	}
	if header != bundleHeader {
		return nil, nil, fmt.Errorf("%w: header %q", ErrBadBundle, header)
	}

	symBytes, err := readSection(br, "syms")
	if err != nil {
		return nil, nil, err
	}
	tab, err := symtab.Read(bytes.NewReader(symBytes))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: symbols: %v", ErrBadBundle, err)
	}

	logBytes, err := readSection(br, "log")
	if err != nil {
		return nil, nil, err
	}
	log, err := shmlog.Read(bytes.NewReader(logBytes))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: log: %v", ErrBadBundle, err)
	}
	return tab, log, nil
}

// ReadBundleFile decodes a bundle from a file path.
func ReadBundleFile(path string) (*symtab.Table, *shmlog.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("recorder: open bundle: %w", err)
	}
	defer f.Close()
	return ReadBundle(f)
}

// ReadBundleLenient decodes a possibly torn bundle (e.g. a .part file a
// killed checkpoint pass left behind), salvaging as much of the log as
// shmlog.ReadLenient can recover and reporting the damage instead of
// failing. The symbol section is written first and is small, so it is
// almost always intact; a bundle torn before the symbols end is
// unrecoverable (there is no log after it to salvage) and returns an
// error. A bundle torn anywhere inside the log section salvages the
// committed prefix.
func ReadBundleLenient(r io.Reader) (*symtab.Table, *shmlog.Log, *shmlog.RecoveryReport, error) {
	br := bufio.NewReader(r)
	header, err := readLine(br)
	if err != nil || header != bundleHeader {
		return nil, nil, nil, fmt.Errorf("%w: unrecoverable: no bundle header", ErrBadBundle)
	}
	symBytes, err := readSection(br, "syms")
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: unrecoverable: torn before the log section", ErrBadBundle)
	}
	tab, err := symtab.Read(bytes.NewReader(symBytes))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: symbols: %v", ErrBadBundle, err)
	}
	// The log section header may itself be torn; whatever follows it (or
	// nothing at all) goes through the lenient log reader. The declared
	// section length is deliberately ignored: for a torn file it promises
	// more bytes than exist, and the lenient reader's own header/commit
	// invariants bound what is trusted.
	if line, err := readLine(br); err != nil || !strings.HasPrefix(line, "section log ") {
		log, rep, lerr := shmlog.ReadLenient(bytes.NewReader(nil))
		return tab, log, rep, lerr
	}
	log, rep, err := shmlog.ReadLenient(br)
	return tab, log, rep, err
}

func readSection(br *bufio.Reader, want string) ([]byte, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("%w: section header: %v", ErrBadBundle, err)
	}
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[0] != "section" || fields[1] != want {
		return nil, fmt.Errorf("%w: want section %q, got %q", ErrBadBundle, want, line)
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: section length %q", ErrBadBundle, fields[2])
	}
	const maxSection = 1 << 31
	if n > maxSection {
		return nil, fmt.Errorf("%w: section length %d too large", ErrBadBundle, n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(br, data); err != nil {
		return nil, fmt.Errorf("%w: section body: %v", ErrBadBundle, err)
	}
	return data, nil
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSuffix(line, "\n"), nil
}
