package recorder

import (
	"fmt"
	"io"
	"os"
	"time"

	"teeperf/internal/faultinject"
)

// Checkpointing is the recorder's crash-consistency mechanism: a
// background flusher that periodically snapshots the committed prefix of
// the run — symbol table plus shared-memory log — to <path>.part and
// atomically renames it onto <path>. The rename is the commit point, so a
// SIGKILL at any instant leaves either the previous complete checkpoint
// at <path> (loadable with plain Read) or, at worst, a torn <path>.part
// that shmlog.ReadLenient salvages. The recorder exists outside the TEE
// precisely to survive the enclave misbehaving (paper §II, stage 2);
// checkpointing extends that survival to the recorder process itself.
//
// Every step boundary of one checkpoint pass is a registered fault point
// (faultinject.Checkpoint*), so the kill-at-every-fault-point test can
// SIGKILL the process between any two persistence steps and assert the
// recovery invariant above.
type checkpointer struct {
	stop chan struct{}
	done chan struct{}
}

// StartCheckpoint launches the background flusher: every interval it
// snapshots the current bundle to path+".part" and atomically renames it
// onto path. StopCheckpoint halts it after one final pass; Stop implies
// StopCheckpoint.
func (r *Recorder) StartCheckpoint(path string, interval time.Duration) error {
	if path == "" {
		return fmt.Errorf("recorder: checkpoint path must not be empty")
	}
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	if r.ckpt != nil {
		return fmt.Errorf("recorder: checkpointing already running")
	}
	r.ckptPath = path
	r.ckptStats.Configured = true
	c := &checkpointer{stop: make(chan struct{}), done: make(chan struct{})}
	r.ckpt = c
	go r.checkpointLoop(c, interval)
	return nil
}

// StopCheckpoint halts the background flusher after one final checkpoint
// pass and returns that pass's error. It is idempotent and safe to call
// when checkpointing never started.
func (r *Recorder) StopCheckpoint() error {
	r.ckptMu.Lock()
	c := r.ckpt
	r.ckpt = nil
	r.ckptMu.Unlock()
	if c == nil {
		return nil
	}
	close(c.stop)
	<-c.done
	return r.CheckpointNow()
}

// CheckpointStats is the checkpointer's self-accounting, sampled by the
// live monitor and exported as Prometheus gauges: how healthy is the
// crash-consistency mechanism right now, and how stale would a recovered
// profile be.
type CheckpointStats struct {
	// Configured reports whether checkpointing was ever started (the other
	// fields are meaningful only when true).
	Configured bool
	// Passes counts completed passes (reached the atomic rename).
	Passes int
	// LastSuccess is the completion time of the most recent clean pass
	// (zero before the first).
	LastSuccess time.Time
	// ConsecutiveFailures counts failed passes since the last clean one;
	// it resets to zero on every success.
	ConsecutiveFailures int
	// BytesWritten is the cumulative bundle bytes written by completed
	// passes (failed passes do not count — their .part is discarded).
	BytesWritten uint64
	// LastErr is the most recent pass error (nil after a clean pass).
	LastErr error
}

// CheckpointStats reports the checkpointer's self-accounting.
func (r *Recorder) CheckpointStats() CheckpointStats {
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	return r.ckptStats
}

// CheckpointNow performs one synchronous checkpoint pass against the
// configured path. It is what the background loop runs each tick; tests
// call it directly to hit fault points deterministically.
func (r *Recorder) CheckpointNow() error {
	r.ckptMu.Lock()
	path := r.ckptPath
	r.ckptMu.Unlock()
	if path == "" {
		return fmt.Errorf("recorder: no checkpoint path configured (StartCheckpoint first)")
	}
	written, err := r.checkpointPass(path)
	r.ckptMu.Lock()
	if err == nil {
		r.ckptStats.Passes++
		r.ckptStats.LastSuccess = time.Now()
		r.ckptStats.ConsecutiveFailures = 0
		r.ckptStats.BytesWritten += written
	} else {
		r.ckptStats.ConsecutiveFailures++
	}
	r.ckptStats.LastErr = err
	r.ckptMu.Unlock()
	return err
}

func (r *Recorder) checkpointLoop(c *checkpointer, interval time.Duration) {
	defer close(c.done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			// Pass errors are sticky in CheckpointStats until a clean
			// pass; the loop keeps trying — a transiently full disk must
			// not end crash protection for the rest of the run.
			_ = r.CheckpointNow()
		}
	}
}

// checkpointPass runs one checkpoint: create <path>.part, stream the
// bundle through the (normally no-op) fault-injecting writer, fsync, and
// atomically rename onto <path>. Each step boundary is a registered fault
// point. It returns the bundle bytes written (meaningful on success).
func (r *Recorder) checkpointPass(path string) (uint64, error) {
	inj := r.injector()
	if err := inj.Hit(faultinject.CheckpointBegin); err != nil {
		return 0, fmt.Errorf("recorder: checkpoint: %w", err)
	}
	part := path + ".part"
	f, err := createDataFile(part)
	if err != nil {
		return 0, fmt.Errorf("recorder: checkpoint create: %w", err)
	}
	// The bundle streams through the fault-injection writer wrapper so an
	// armed CheckpointWrite point can shorten, fail, delay or kill any
	// individual Write; a disabled injector adds one atomic load per
	// Write. The counting wrapper feeds CheckpointStats.BytesWritten.
	cw := &countingWriter{w: inj.Writer(f, faultinject.CheckpointWrite)}
	if err := WriteBundle(cw, r.Table(), r.Log()); err != nil {
		f.Close()
		return 0, fmt.Errorf("recorder: checkpoint write: %w", err)
	}
	if err := inj.Hit(faultinject.CheckpointBeforeSync); err != nil {
		f.Close()
		return 0, fmt.Errorf("recorder: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("recorder: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("recorder: checkpoint close: %w", err)
	}
	if err := inj.Hit(faultinject.CheckpointBeforeRename); err != nil {
		return 0, fmt.Errorf("recorder: checkpoint: %w", err)
	}
	if err := os.Rename(part, path); err != nil {
		return 0, fmt.Errorf("recorder: checkpoint rename: %w", err)
	}
	if err := inj.Hit(faultinject.CheckpointAfterRename); err != nil {
		return 0, fmt.Errorf("recorder: checkpoint: %w", err)
	}
	return cw.n, nil
}

// countingWriter tallies bytes accepted by the wrapped writer.
type countingWriter struct {
	w io.Writer
	n uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}
