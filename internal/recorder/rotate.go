package recorder

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"teeperf/internal/shmlog"
)

// Rotate swaps a fresh log segment in under the running probes and returns
// the filled (previous) segment for persistence. The counter value carries
// over into the new segment, so tick values stay monotonic across the
// whole run. Rotation lets a measurement outlive the fixed log capacity
// without dropping events; segments are analyzed independently and merged
// (call stacks spanning a rotation boundary appear as truncated/unmatched
// frames at the seam, which the analyzer already tolerates).
//
// Probe threads running with a batched block (probe.WithBatch) have the
// block they hold in the rotated-out segment released eagerly: Rotate calls
// probe.Runtime.FlushLog on the old segment after the swap, so idle
// threads' reserved slots persist as tombstones (dismissed by readers)
// rather than in-flight holes. A probe that loaded the old log pointer just
// before the swap can still reserve one late block there; such holes are
// rare, and both the cursor (skip-and-revisit) and the analyzer (dismiss)
// tolerate them — the live monitor's retired-cursor grace window covers
// those stragglers.
func (r *Recorder) Rotate() (*shmlog.Log, error) {
	r.rotateMu.Lock()
	defer r.rotateMu.Unlock()

	old := r.Log()
	if old.Mapped() {
		// A fresh segment would be a process-local heap log: the other
		// process would keep appending to the old mapping and the two
		// would silently diverge. Cross-process runs size the mapping up
		// front instead of rotating.
		return nil, fmt.Errorf("recorder: cannot rotate a shared (mmap) log %q", old.Path())
	}
	anchorRuntime := uint64(int64(r.Table().AnchorAddr()) + r.bias)
	flags := old.Flags() // carry activation state and event mask over
	next, err := shmlog.New(r.cfg.capacity,
		shmlog.WithPID(r.cfg.pid),
		shmlog.WithProfilerAddr(anchorRuntime),
		shmlog.WithSync(r.cfg.sync),
		shmlog.WithShards(r.cfg.logShards()),
		shmlog.WithFlags(flags),
	)
	if err != nil {
		return nil, fmt.Errorf("recorder: rotate: %w", err)
	}
	// Carry the adaptive-probe controls (sampling period, deny masks) into
	// the next segment, so a live throttle survives rotation; the flags
	// copy above already carried FlagSampled.
	next.CopyControls(old)

	// Rebind the software counter to the new segment's header word; the
	// counter pauses, seeds the new word from the old one (tick
	// continuity) and resumes. Probes keep their Source — only its target
	// moves. Non-software sources are log-independent and carry over.
	if r.soft != nil {
		r.soft.Retarget(next)
	} else {
		next.AddCounter(old.LoadCounter())
	}

	prev, err := r.rt.SwapLog(next)
	if err != nil {
		return nil, err
	}
	// Tombstone the blocks batched threads still hold in the rotated-out
	// segment before anyone persists it; threads already writing to the
	// new segment are left alone.
	r.rt.FlushLog(prev)
	r.segments++
	for _, fn := range r.rotateHooks {
		fn(prev)
	}
	return prev, nil
}

// OnRotate registers fn to be called with each rotated-out segment, in
// rotation order, before Rotate returns. The live monitor subscribes so it
// can drain segments that come and go entirely between two polls; fn must
// not call back into Rotate or Segments.
func (r *Recorder) OnRotate(fn func(old *shmlog.Log)) {
	r.rotateMu.Lock()
	defer r.rotateMu.Unlock()
	r.rotateHooks = append(r.rotateHooks, fn)
}

// Segments returns how many rotations have happened.
func (r *Recorder) Segments() int {
	r.rotateMu.Lock()
	defer r.rotateMu.Unlock()
	return r.segments
}

// PersistSegment writes one rotated-out log segment (with the shared
// symbol table) as a bundle.
func (r *Recorder) PersistSegment(log *shmlog.Log, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("recorder: create %s: %w", path, err)
	}
	defer f.Close()
	if err := WriteBundle(f, r.Table(), log); err != nil {
		return fmt.Errorf("recorder: persist segment %s: %w", path, err)
	}
	return f.Sync()
}

// StartAutoRotate launches a watcher that rotates the log whenever it
// crosses fillThreshold (0 < t < 1, e.g. 0.9) and persists each filled
// segment into dir as segment-NNNN.teeperf. Call StopAutoRotate (or Stop,
// which implies it) to finish; the active segment is persisted by the
// usual Persist call.
func (r *Recorder) StartAutoRotate(dir string, fillThreshold float64, checkEvery time.Duration) error {
	if fillThreshold <= 0 || fillThreshold >= 1 {
		return fmt.Errorf("recorder: fill threshold %f out of (0,1)", fillThreshold)
	}
	if checkEvery <= 0 {
		checkEvery = 10 * time.Millisecond
	}
	if r.rotStop != nil {
		return fmt.Errorf("recorder: auto-rotate already running")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("recorder: auto-rotate dir: %w", err)
	}
	r.rotStop = make(chan struct{})
	r.rotDone = make(chan struct{})
	go r.autoRotate(dir, fillThreshold, checkEvery, r.rotStop, r.rotDone)
	return nil
}

func (r *Recorder) autoRotate(dir string, threshold float64, every time.Duration, stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	seq := 0
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			log := r.Log()
			if float64(log.Len()) < threshold*float64(log.Capacity()) {
				continue
			}
			prev, err := r.Rotate()
			if err != nil {
				continue // next tick retries; the log keeps absorbing events
			}
			seq++
			path := filepath.Join(dir, fmt.Sprintf("segment-%04d.teeperf", seq))
			// Persistence failures leave the segment in memory only; the
			// events already recorded are not lost to the caller, who can
			// still reach them via the returned error-free rotation count.
			_ = r.PersistSegment(prev, path)
		}
	}
}

// StopAutoRotate halts the watcher (idempotent, safe if never started).
func (r *Recorder) StopAutoRotate() {
	if r.rotStop == nil {
		return
	}
	close(r.rotStop)
	<-r.rotDone
	r.rotStop = nil
	r.rotDone = nil
}
