package recorder

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"teeperf/internal/analyzer"
	"teeperf/internal/faultinject"
	"teeperf/internal/symtab"
)

// Environment variables steering the re-exec'd child in the
// kill-at-every-fault-point test. TestMain intercepts them before any test
// runs, so the child executes only the crash scenario.
const (
	envChild     = "TEEPERF_CKPT_CHILD"
	envPoint     = "TEEPERF_CKPT_POINT"
	envPath      = "TEEPERF_CKPT_PATH"
	envNth       = "TEEPERF_CKPT_NTH"
	envSkipClean = "TEEPERF_CKPT_SKIP_CLEAN"
)

func TestMain(m *testing.M) {
	if os.Getenv(envChild) != "" {
		runCheckpointChild()
		// runCheckpointChild only returns if the armed fault point never
		// fired — that is a test failure in the parent (no SIGKILL).
		fmt.Fprintln(os.Stderr, "checkpoint child: fault point never reached")
		os.Exit(3)
	}
	os.Exit(m.Run())
}

// runCheckpointChild is the crash victim: it records a workload, arms a
// process kill at the named fault point, and triggers a checkpoint pass
// (or, for CounterStall, just waits for the counter thread to reach the
// point). It never returns on success — SIGKILL takes the whole process.
func runCheckpointChild() {
	point, ok := faultinject.PointByName(os.Getenv(envPoint))
	if !ok {
		fmt.Fprintf(os.Stderr, "checkpoint child: unknown point %q\n", os.Getenv(envPoint))
		os.Exit(4)
	}
	path := os.Getenv(envPath)
	nth, _ := strconv.Atoi(os.Getenv(envNth))
	if nth < 1 {
		nth = 1
	}

	inj := faultinject.New(1)
	tab := symtab.New()
	tab.MustRegister("main", 16, "main.go", 1)
	tab.MustRegister("work", 16, "main.go", 10)
	mode := CounterVirtual
	if point == faultinject.CounterStall {
		// The counter-stall point lives on the software counter's spin
		// thread; only that mode reaches it.
		mode = CounterSoftware
	}
	r, err := New(tab,
		WithCounterMode(mode),
		WithCapacity(1<<10),
		WithFaultInjector(inj))
	if err == nil {
		err = r.Start()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkpoint child: %v\n", err)
		os.Exit(4)
	}
	th := r.Thread()
	for i := 0; i < 100; i++ {
		th.Enter(r.AddrOf("main"))
		th.Enter(r.AddrOf("work"))
		th.Exit(r.AddrOf("work"))
		th.Exit(r.AddrOf("main"))
	}

	// A huge interval parks the background loop; the child drives passes
	// deterministically with CheckpointNow.
	if err := r.StartCheckpoint(path, time.Hour); err != nil {
		fmt.Fprintf(os.Stderr, "checkpoint child: %v\n", err)
		os.Exit(4)
	}
	if os.Getenv(envSkipClean) == "" {
		// One clean pass so the parent can assert the final bundle survives
		// whatever the armed kill does to the NEXT pass.
		if err := r.CheckpointNow(); err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint child: clean pass: %v\n", err)
			os.Exit(4)
		}
	}

	inj.Arm(point, nth, faultinject.Kill())
	if point == faultinject.CounterStall {
		// The spin thread hits the point within microseconds; the deadline
		// only bounds a broken build.
		time.Sleep(10 * time.Second)
		return
	}
	_ = r.CheckpointNow() // SIGKILL fires mid-pass; this never returns
}

// runKillChild re-executes the test binary as a crash victim and asserts
// it died by SIGKILL.
func runKillChild(t *testing.T, point, path string, nth int, skipClean bool) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		envChild+"=1",
		envPoint+"="+point,
		envPath+"="+path,
		envNth+"="+strconv.Itoa(nth),
	)
	if skipClean {
		cmd.Env = append(cmd.Env, envSkipClean+"=1")
	}
	out, err := cmd.CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("child exited cleanly (err=%v) — the fault point never killed it\noutput: %s", err, out)
	}
	ws, ok := exitErr.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("child died wrong: %v (status %+v)\noutput: %s", err, exitErr.Sys(), out)
	}
}

// TestCheckpointKillAtEveryFaultPoint is the acceptance test for the
// crash-consistency design: SIGKILL the recorder between ANY two
// persistence steps (every checkpoint fault point) and the last completed
// checkpoint must still load strictly into a non-empty profile, while any
// torn .part left behind must at least be salvageable leniently.
func TestCheckpointKillAtEveryFaultPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill matrix skipped in -short")
	}
	for _, p := range faultinject.CheckpointPoints {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			path := filepath.Join(t.TempDir(), "run.teeperf")
			runKillChild(t, p.String(), path, 1, false)

			// The atomic-rename contract: the final path always holds a
			// complete bundle from a finished pass.
			tab, log, err := ReadBundleFile(path)
			if err != nil {
				t.Fatalf("final bundle unreadable after kill at %v: %v", p, err)
			}
			if log.Len() == 0 {
				t.Fatalf("final bundle empty after kill at %v", p)
			}
			prof, err := analyzer.Analyze(log, tab)
			if err != nil {
				t.Fatalf("analyze final bundle: %v", err)
			}
			if len(prof.Records()) == 0 {
				t.Fatalf("final profile has no completed calls after kill at %v", p)
			}

			// A torn .part (when the kill left one) must either salvage
			// leniently or be rejected as unrecoverable (e.g. zero bytes
			// written before the kill) — never anything worse. The final
			// bundle above is the actual safety net.
			if f, err := os.Open(path + ".part"); err == nil {
				defer f.Close()
				if _, _, _, err := ReadBundleLenient(f); err != nil && !errors.Is(err, ErrBadBundle) {
					t.Errorf("torn .part after kill at %v: unexpected error class: %v", p, err)
				}
			}
		})
	}
}

// TestCheckpointKillMidFirstWrite kills the recorder during the very first
// checkpoint's bundle write — before any complete checkpoint exists — and
// asserts the torn .part alone salvages into a non-empty profile. The
// workload is sized past the bundle writer's 4 KiB buffer so the kill
// lands on the second flush, mid-log.
func TestCheckpointKillMidFirstWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill test skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "run.teeperf")
	runKillChild(t, faultinject.CheckpointWrite.String(), path, 2, true)

	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("final bundle exists despite no pass completing (stat err=%v)", err)
	}
	f, err := os.Open(path + ".part")
	if err != nil {
		t.Fatalf("no torn .part after mid-write kill: %v", err)
	}
	defer f.Close()
	tab, log, rep, err := ReadBundleLenient(f)
	if err != nil {
		t.Fatalf("lenient read of torn .part: %v", err)
	}
	if log.Len() == 0 {
		t.Fatalf("nothing salvaged from torn .part (report %v)", rep)
	}
	prof, err := analyzer.AnalyzeRecovered(log, tab, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Records()) == 0 {
		t.Fatal("salvaged profile has no records")
	}
	if prof.Recovery == nil {
		t.Fatal("recovered profile lost its recovery report")
	}
}

// TestCheckpointLifecycle covers the non-crash path: periodic passes land
// a loadable bundle, stats count passes, and stop semantics are
// idempotent.
func TestCheckpointLifecycle(t *testing.T) {
	r, tab := newTestRecorder(t)
	path := filepath.Join(t.TempDir(), "run.teeperf")

	if err := r.StartCheckpoint("", time.Millisecond); err == nil {
		t.Fatal("empty checkpoint path accepted")
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	th := r.Thread()
	th.Enter(r.AddrOf("main"))
	th.Exit(r.AddrOf("main"))

	if err := r.StartCheckpoint(path, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := r.StartCheckpoint(path, time.Millisecond); err == nil {
		t.Fatal("double StartCheckpoint accepted")
	}
	// Wait for at least one background pass.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if r.CheckpointStats().Passes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint pass completed within 5s")
		}
		time.Sleep(time.Millisecond)
	}

	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	cs := r.CheckpointStats()
	if cs.LastErr != nil {
		t.Fatalf("last pass error: %v", cs.LastErr)
	}
	if cs.Passes < 2 {
		t.Fatalf("passes = %d, want >= 2 (background + final)", cs.Passes)
	}
	if !cs.Configured || cs.LastSuccess.IsZero() || cs.BytesWritten == 0 || cs.ConsecutiveFailures != 0 {
		t.Fatalf("stats not accounted: %+v", cs)
	}
	if err := r.StopCheckpoint(); err != nil {
		t.Fatalf("StopCheckpoint after Stop: %v", err)
	}

	// The final checkpoint (run by Stop, after the flush) carries the full
	// recording.
	ltab, log, err := ReadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() != 2 {
		t.Fatalf("final checkpoint has %d entries, want 2", log.Len())
	}
	if ltab.Len() != tab.Len() {
		t.Fatalf("symbol table: %d symbols, want %d", ltab.Len(), tab.Len())
	}
	if _, err := os.Stat(path + ".part"); !os.IsNotExist(err) {
		t.Fatalf(".part left behind after clean shutdown (err=%v)", err)
	}
}

// TestCheckpointPassErrorIsStickyButRetried: a failed pass surfaces in
// CheckpointStats yet does not end checkpointing — the next clean pass
// overwrites the error.
func TestCheckpointPassErrorIsStickyButRetried(t *testing.T) {
	inj := faultinject.New(1)
	r, _ := newTestRecorder(t, WithFaultInjector(inj))
	path := filepath.Join(t.TempDir(), "run.teeperf")
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.StartCheckpoint(path, time.Hour); err != nil {
		t.Fatal(err)
	}

	inj.Arm(faultinject.CheckpointBegin, 1, faultinject.Fail())
	if err := r.CheckpointNow(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected pass: err = %v", err)
	}
	if cs := r.CheckpointStats(); cs.Passes != 0 || cs.LastErr == nil || cs.ConsecutiveFailures != 1 {
		t.Fatalf("after failed pass: %+v", cs)
	}
	if err := r.CheckpointNow(); err != nil {
		t.Fatalf("clean retry failed: %v", err)
	}
	if cs := r.CheckpointStats(); cs.Passes != 1 || cs.LastErr != nil || cs.ConsecutiveFailures != 0 {
		t.Fatalf("after clean pass: %+v", cs)
	}
	if _, _, err := ReadBundleFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointShortWriteFailsPass: an injected short write must fail the
// pass (bufio reports it) rather than silently committing a torn bundle.
func TestCheckpointShortWriteFailsPass(t *testing.T) {
	inj := faultinject.New(1)
	r, _ := newTestRecorder(t, WithFaultInjector(inj))
	path := filepath.Join(t.TempDir(), "run.teeperf")
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	th := r.Thread()
	th.Enter(r.AddrOf("main"))
	th.Exit(r.AddrOf("main"))
	if err := r.StartCheckpoint(path, time.Hour); err != nil {
		t.Fatal(err)
	}

	inj.Arm(faultinject.CheckpointWrite, 1, faultinject.Short())
	if err := r.CheckpointNow(); err == nil {
		t.Fatal("short write did not fail the pass")
	}
	// The rename never happened: no final bundle.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("short-written bundle was committed (err=%v)", err)
	}
}
