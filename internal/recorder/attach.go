// Cross-process hosting: the recorder-process end of the attach protocol.
//
// The paper's Stage 2 recorder is a native wrapper process sharing a memory
// region with the TEE. Create builds that region as a file-backed mmap log
// and returns a recorder hosting it: the software counter thread, periodic
// checkpointing and the live monitor all run here, in the recorder process,
// while the instrumented application (spawned with the TEEPERF_SHM
// environment variable, see SharedEnv) opens the same file and appends
// events from its own address space. Attach re-hosts an existing mapping —
// a recorder process (re)started after the region already exists.
//
// Symbols cross the process boundary through a side file next to the
// mapping (SymsPath): the application writes its table once its probes are
// registered, and the host installs it with Recorder.SetTable before
// persisting.
package recorder

import (
	"errors"
	"fmt"
	"os"
	"time"

	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// SharedEnv is the environment variable carrying the shared-mapping path
// from `teeperf run` to the instrumented child process. rt and the Session
// facade attach automatically when it is set.
const SharedEnv = "TEEPERF_SHM"

// Create makes a new file-backed shared log at path and returns a recorder
// hosting it: its counter thread targets the mapping, its Start sets the
// recorder-ready handshake bit, and its table (empty unless WithTable) is
// meant to be replaced via SetTable once the application has written its
// symbol side file. Returns shmlog.ErrMmapUnsupported on platforms without
// shared mappings.
func Create(path string, opts ...Option) (*Recorder, error) {
	cfg := hostConfig(opts)
	log, err := shmlog.CreateFile(path, cfg.capacity,
		shmlog.WithPID(cfg.pid),
		shmlog.WithShards(cfg.logShards()),
		shmlog.WithSamplePeriod(cfg.samplePeriod),
		shmlog.WithFlags(shmlog.EventCall|shmlog.EventReturn), // inactive until Start
	)
	if err != nil {
		return nil, fmt.Errorf("recorder: create shared log: %w", err)
	}
	return finishHost(log, cfg)
}

// Attach re-hosts an existing file-backed shared log — a recorder process
// adopting a mapping some earlier process created. The counter thread and
// checkpointing run here from now on.
func Attach(path string, opts ...Option) (*Recorder, error) {
	cfg := hostConfig(opts)
	log, err := shmlog.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("recorder: attach shared log: %w", err)
	}
	return finishHost(log, cfg)
}

func hostConfig(opts []Option) config {
	cfg := config{capacity: 1 << 20, sync: shmlog.SyncAtomic}
	for _, opt := range opts {
		opt.apply(&cfg)
	}
	return cfg
}

func finishHost(log *shmlog.Log, cfg config) (*Recorder, error) {
	tab := cfg.table
	if tab == nil {
		tab = symtab.New()
	}
	r, err := newRecorder(tab, log, cfg, true)
	if err != nil {
		log.Close()
		return nil, err
	}
	return r, nil
}

// SymsPath returns the symbol side-file path convention for a shared
// mapping: the mapping path plus ".syms".
func SymsPath(shmPath string) string { return shmPath + ".syms" }

// WriteSymsFile persists tab to path atomically (tmp + rename), so a host
// polling for the file never reads a torn table.
func WriteSymsFile(path string, tab *symtab.Table) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("recorder: create syms side file: %w", err)
	}
	if _, err := tab.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("recorder: write syms side file: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("recorder: sync syms side file: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("recorder: close syms side file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("recorder: publish syms side file: %w", err)
	}
	return nil
}

// SymsLoader incrementally adopts a symbol side file: Load returns a fresh
// table only when the file appeared or was republished since the previous
// successful call, so pollers (the `teeperf run` wrapper, the fleet
// agent's per-session scrape) re-parse the table once per publication
// instead of once per poll.
type SymsLoader struct {
	path string
	seen time.Time
}

// NewSymsLoader watches the side file of the shared mapping at shmPath.
func NewSymsLoader(shmPath string) *SymsLoader {
	return &SymsLoader{path: SymsPath(shmPath)}
}

// Path returns the watched side-file path.
func (s *SymsLoader) Path() string { return s.path }

// Load returns the freshly parsed table and true when the side file has a
// newer modification time than the last successful Load; otherwise
// (missing file, unchanged file, parse error on a torn concurrent write)
// it returns nil and false.
func (s *SymsLoader) Load() (*symtab.Table, bool) {
	st, err := os.Stat(s.path)
	if err != nil || !st.ModTime().After(s.seen) {
		return nil, false
	}
	tab, err := ReadSymsFile(s.path)
	if err != nil {
		return nil, false
	}
	s.seen = st.ModTime()
	return tab, true
}

// WatchSyms launches a background poller that installs each fresh
// publication of the shared mapping's symbol side file into the recorder
// via SetTable, so mid-run checkpoints and live monitors resolve names
// instead of raw addresses. The returned stop function halts the poller,
// performs one final unconditional read (the application may publish right
// before exiting), and returns that read's error — except os.ErrNotExist,
// which just means the application never published.
func (r *Recorder) WatchSyms(shmPath string, interval time.Duration) (stop func() error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	loader := NewSymsLoader(shmPath)
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-ticker.C:
			}
			if tab, ok := loader.Load(); ok {
				r.SetTable(tab)
			}
		}
	}()
	return func() error {
		close(stopCh)
		<-done
		tab, err := ReadSymsFile(loader.Path())
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil
			}
			return err
		}
		r.SetTable(tab)
		return nil
	}
}

// ReadSymsFile loads the application's symbol table from its side file.
// A missing file returns os.ErrNotExist (the application has not published
// yet).
func ReadSymsFile(path string) (*symtab.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		return nil, fmt.Errorf("recorder: open syms side file: %w", err)
	}
	defer f.Close()
	tab, err := symtab.Read(f)
	if err != nil {
		return nil, fmt.Errorf("recorder: read syms side file %s: %w", path, err)
	}
	return tab, nil
}
