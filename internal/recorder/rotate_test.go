package recorder

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"teeperf/internal/analyzer"
	"teeperf/internal/symtab"
)

func TestRotatePreservesEventsAcrossSegments(t *testing.T) {
	r, _ := newTestRecorder(t, WithCapacity(64))
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	th := r.Thread()
	fn := r.AddrOf("work")

	// Fill one segment with balanced pairs, rotate, fill the next.
	for i := 0; i < 30; i++ {
		th.Enter(fn)
		th.Exit(fn)
	}
	prev, err := r.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if prev.Len() != 60 {
		t.Fatalf("rotated segment has %d entries, want 60", prev.Len())
	}
	for i := 0; i < 20; i++ {
		th.Enter(fn)
		th.Exit(fn)
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := r.Log().Len(); got != 40 {
		t.Fatalf("active segment has %d entries, want 40", got)
	}
	if r.Segments() != 1 {
		t.Errorf("Segments() = %d, want 1", r.Segments())
	}

	// Analyze both segments and merge: nothing lost.
	p1, err := analyzer.Analyze(prev, r.Table())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := analyzer.Analyze(r.Log(), r.Table())
	if err != nil {
		t.Fatal(err)
	}
	merged, err := analyzer.Merge(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	stat, ok := merged.Func("work")
	if !ok || stat.Calls != 50 {
		t.Errorf("merged work calls = %d, want 50", stat.Calls)
	}
}

func TestRotateCounterContinuity(t *testing.T) {
	tab := symtab.New()
	tab.MustRegister("fn", 16, "f.go", 1)
	r, err := New(tab, WithCapacity(256)) // software counter (log-bound)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	// Let the counter accumulate, then rotate: the new segment's counter
	// must start at or beyond the old one (monotonic ticks across the
	// whole run).
	deadline := time.Now().Add(2 * time.Second)
	for r.Log().LoadCounter() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	before := r.Log().LoadCounter()
	if before == 0 {
		t.Skip("software counter got no CPU time")
	}
	prev, err := r.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Log().LoadCounter(); got < prev.LoadCounter() {
		t.Errorf("counter went backwards across rotation: %d -> %d", prev.LoadCounter(), got)
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestAutoRotatePersistsSegments(t *testing.T) {
	dir := t.TempDir()
	r, _ := newTestRecorder(t, WithCapacity(128))
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.StartAutoRotate(dir, 0.5, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := r.StartAutoRotate(dir, 0.5, time.Millisecond); err == nil {
		t.Error("double StartAutoRotate should fail")
	}
	th := r.Thread()
	fn := r.AddrOf("work")
	// Write far more events than one segment holds; auto-rotation must
	// prevent drops.
	for i := 0; i < 2000; i++ {
		th.Enter(fn)
		th.Exit(fn)
		if i%32 == 0 {
			time.Sleep(time.Millisecond) // give the watcher its ticks
		}
	}
	if err := r.Stop(); err != nil { // implies StopAutoRotate
		t.Fatal(err)
	}
	dropped := r.Stats().Dropped
	if err := r.Persist(filepath.Join(dir, "final.teeperf")); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("only %d files persisted; auto-rotation did not trigger", len(entries))
	}

	// Recover every event by merging all segments.
	var (
		profiles    []*analyzer.Profile
		totalEvents int
	)
	for _, e := range entries {
		tab, log, err := ReadBundleFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("segment %s: %v", e.Name(), err)
		}
		totalEvents += log.Len()
		p, err := analyzer.Analyze(log, tab)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	merged, err := analyzer.Merge(profiles...)
	if err != nil {
		t.Fatal(err)
	}
	// Exact conservation: every probe event either landed in some segment
	// or was counted as dropped at run time. (Drops can still occur if the
	// watcher falls behind between its ticks.)
	recovered := uint64(totalEvents)
	if got := recovered + dropped; got != 4000 {
		t.Errorf("events: recovered %d + dropped %d = %d, want 4000", recovered, dropped, got)
	}
	// Complete-call counts vary with scheduling (pairs split across a
	// rotation seam become truncated/unmatched; bursts between watcher
	// ticks can drop). Conservation above is the hard invariant; here we
	// only require that a meaningful number of calls survived intact.
	stat, _ := merged.Func("work")
	if stat.Calls < 100 {
		t.Errorf("merged complete calls = %d, want at least a few hundred", stat.Calls)
	}
}

// TestRotateTombstonesIdleThreadBlocks: a batched thread that goes idle
// still holds reserved slots in the segment being rotated out; Rotate must
// release them eagerly so the segment is persisted with tombstones
// (dismissed, not counted as pending) instead of permanent in-flight holes.
func TestRotateTombstonesIdleThreadBlocks(t *testing.T) {
	r, _ := newTestRecorder(t, WithCapacity(64), WithBatch(8))
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	fn := r.AddrOf("work")
	busy, idle := r.Thread(), r.Thread()
	idle.Enter(fn) // reserves a block of 8, fills one slot, goes idle
	for i := 0; i < 5; i++ {
		busy.Enter(fn)
		busy.Exit(fn)
	}

	prev, err := r.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	// The busy thread's 10 events span two 8-slot blocks and the idle
	// thread holds one more; every unfilled slot of those 24 must now read
	// as a tombstone, not an in-flight hole.
	if got := prev.Len(); got != 24 {
		t.Fatalf("rotated segment reserved %d slots, want 24", got)
	}
	c := prev.Cursor()
	if drained := c.Next(nil); len(drained) != 11 || c.Pending() != 0 {
		t.Fatalf("rotated segment: %d entries, %d pending holes; want 11 and 0", len(drained), c.Pending())
	}
	// The idle thread can still record afterwards — into the new segment.
	idle.Exit(fn)
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := r.Log().Entries(); len(got) != 1 {
		t.Fatalf("new segment has %d entries, want the idle thread's exit", len(got))
	}
}

func TestAutoRotateValidation(t *testing.T) {
	r, _ := newTestRecorder(t)
	if err := r.StartAutoRotate(t.TempDir(), 0, time.Millisecond); err == nil {
		t.Error("threshold 0 should fail")
	}
	if err := r.StartAutoRotate(t.TempDir(), 1.5, time.Millisecond); err == nil {
		t.Error("threshold > 1 should fail")
	}
	r.StopAutoRotate() // never started: must be a safe no-op
}

func TestPersistSegmentError(t *testing.T) {
	r, _ := newTestRecorder(t)
	if err := r.PersistSegment(r.Log(), filepath.Join(t.TempDir(), "nodir", "x")); err == nil {
		t.Error("unwritable path should fail")
	}
}
