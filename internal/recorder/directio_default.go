//go:build !linux || !directio

package recorder

import (
	"io"
	"os"
)

// dataFile is the destination a checkpoint pass streams its bundle into:
// plain buffered file I/O by default, direct I/O when built with the
// `directio` tag on linux. Sync must make the written bytes durable before
// the atomic rename commits the checkpoint.
type dataFile interface {
	io.Writer
	Sync() error
	Close() error
}

// createDataFile creates (truncating) the checkpoint data file. The
// default build uses the page cache — os.Create — which is right for
// normal workloads; the directio build variant bypasses it so large
// checkpoint streams do not evict the application's working set.
func createDataFile(path string) (dataFile, error) {
	return os.Create(path)
}
