// Package recorder implements TEE-Perf's stage 2: the native wrapper
// process that runs alongside the application in the TEE. It sets up the
// shared-memory log, maps the software counter into it, hands probe handles
// to application threads, allows recording to be toggled while the
// application runs, and persists the log (plus the symbol side file) after
// the measurement.
package recorder

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"teeperf/internal/counter"
	"teeperf/internal/faultinject"
	"teeperf/internal/probe"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// CounterMode selects the probe time source.
type CounterMode int

// Counter modes. CounterSoftware is the paper's default: a dedicated
// spinning thread, usable on any platform. CounterTSC uses the host
// monotonic clock and models platforms where a hardware counter is
// readable from inside the TEE. CounterVirtual is a deterministic source
// for tests.
const (
	CounterSoftware CounterMode = iota + 1
	CounterTSC
	CounterVirtual
)

// Errors returned by the recorder lifecycle.
var (
	ErrAlreadyStarted = errors.New("recorder: already started")
	ErrNotStarted     = errors.New("recorder: not started")
)

// Recorder owns one profiling run.
type Recorder struct {
	// tabMu guards tab: in cross-process mode the hosting recorder starts
	// with an empty table and SetTable swaps in the application's symbols
	// (read from the side file) while checkpointing may be reading it.
	tabMu sync.RWMutex
	tab   *symtab.Table

	rt   *probe.Runtime
	soft *counter.Software
	src  counter.Source
	bias int64
	cfg  config

	// sharedPath is the backing file of a cross-process (mmap) log; empty
	// for in-process runs. host marks the recorder-side end of the attach
	// protocol: it owns the counter thread and the ready flag.
	sharedPath string
	host       bool

	// stateMu guards the run-lifecycle fields below; the live monitor
	// calls Stats concurrently with Start/Stop.
	stateMu   sync.Mutex
	started   bool
	stopped   bool
	startTime time.Time
	duration  time.Duration

	rotateMu    sync.Mutex
	segments    int
	rotateHooks []func(old *shmlog.Log)

	rotStop chan struct{}
	rotDone chan struct{}

	// Checkpointing state (checkpoint.go). ckptMu is separate from
	// stateMu so checkpoint passes never contend with Stats sampling.
	ckptMu    sync.Mutex
	ckpt      *checkpointer
	ckptPath  string
	ckptStats CheckpointStats

	inject *faultinject.Injector
}

// Option configures New.
type Option interface {
	apply(*config)
}

type config struct {
	capacity     int
	shards       int
	pid          uint64
	mode         CounterMode
	source       counter.Source
	filter       *probe.Filter
	bias         int64
	sync         shmlog.Sync
	batch        int
	samplePeriod uint64
	adaptMin     int
	adaptMax     int
	inject       *faultinject.Injector
	shared       string
	table        *symtab.Table
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// logShards normalizes the configured shard count for log creation: zero
// (unset) means a single segment.
func (c *config) logShards() int {
	if c.shards < 1 {
		return 1
	}
	return c.shards
}

// WithCapacity sets the log capacity in entries (default 1<<20).
func WithCapacity(entries int) Option {
	return optionFunc(func(c *config) { c.capacity = entries })
}

// WithShards splits the log's entry region into n independent per-thread
// segments (hashed by thread ID), each with its own cache-line-aligned
// tail, so many writer threads append without contending on one
// fetch-and-add word (default 1).
func WithShards(n int) Option {
	return optionFunc(func(c *config) { c.shards = n })
}

// WithPID records the profiled process ID in the log header.
func WithPID(pid uint64) Option {
	return optionFunc(func(c *config) { c.pid = pid })
}

// WithCounterMode selects the time source (default CounterSoftware).
func WithCounterMode(m CounterMode) Option {
	return optionFunc(func(c *config) { c.mode = m })
}

// WithCounterSource installs a custom counter source, overriding the mode.
func WithCounterSource(src counter.Source) Option {
	return optionFunc(func(c *config) { c.source = src })
}

// WithFilter enables selective code profiling.
func WithFilter(f *probe.Filter) Option {
	return optionFunc(func(c *config) { c.filter = f })
}

// WithLoadBias simulates the binary being relocated by delta bytes: probe
// addresses and the recorded profiler anchor are shifted, and the analyzer
// must recover the offset from the anchor (the paper's relocation
// handling).
func WithLoadBias(delta int64) Option {
	return optionFunc(func(c *config) { c.bias = delta })
}

// WithSync selects the log synchronization mode (ablation A1).
func WithSync(s shmlog.Sync) Option {
	return optionFunc(func(c *config) { c.sync = s })
}

// WithBatch makes each probe thread reserve blocks of k log slots per tail
// fetch-and-add instead of one (default 1; see probe.WithBatch). Unused
// trailing slots of a block are released at rotation and at Stop.
func WithBatch(k int) Option {
	return optionFunc(func(c *config) { c.batch = k })
}

// WithSamplePeriod makes probes record 1-in-n call pairs (0 and 1 both mean
// every pair). The period is published in the log header so analyzers scale
// folded weights back up, and can be changed live with SetSamplePeriod.
func WithSamplePeriod(n uint64) Option {
	return optionFunc(func(c *config) { c.samplePeriod = n })
}

// WithAdaptiveBatch makes the probe batch size self-tuning within [min, max]
// (see probe.WithAdaptiveBatch): it grows under reservation latency or fill
// pressure and shrinks when the drop rate climbs. The live size and the
// controller's decisions are exported through Stats.
func WithAdaptiveBatch(min, max int) Option {
	return optionFunc(func(c *config) { c.adaptMin, c.adaptMax = min, max })
}

// WithFaultInjector installs a fault injector on the recorder's
// persistence and counter paths (tests and chaos runs). The default is
// the disabled package injector, whose fault points cost one atomic load.
func WithFaultInjector(in *faultinject.Injector) Option {
	return optionFunc(func(c *config) { c.inject = in })
}

// WithShared attaches the recorder to an existing file-backed shared log
// (created by a hosting recorder process, see Create) instead of
// allocating a heap log. The default counter source becomes a passive
// reader of the shared counter word — the hosting process runs the
// increment loop. WithCapacity and WithSync are ignored: the mapping's
// creator fixed both.
func WithShared(path string) Option {
	return optionFunc(func(c *config) { c.shared = path })
}

// WithTable supplies the symbol table for Create/Attach hosts. The default
// is a fresh table; the host later learns the application's symbols via
// SetTable (from the side file the instrumented process writes).
func WithTable(tab *symtab.Table) Option {
	return optionFunc(func(c *config) { c.table = tab })
}

// counterShared is the resolved default mode of a recorder attached to a
// shared mapping it does not host: a passive reader of the counter word
// the hosting process advances.
const counterShared CounterMode = -1

// New prepares a recorder over the given symbol table. The log is created
// inactive; Start activates it. With WithShared the recorder instead opens
// an existing file-backed mapping (created by a hosting recorder process)
// and stamps this process's PID and profiler anchor into the shared
// header.
func New(tab *symtab.Table, opts ...Option) (*Recorder, error) {
	if tab == nil {
		return nil, errors.New("recorder: nil symbol table")
	}
	cfg := config{
		capacity: 1 << 20,
		sync:     shmlog.SyncAtomic,
	}
	for _, opt := range opts {
		opt.apply(&cfg)
	}

	var log *shmlog.Log
	if cfg.shared != "" {
		l, err := shmlog.OpenFile(cfg.shared)
		if err != nil {
			return nil, fmt.Errorf("recorder: attach shared log: %w", err)
		}
		pid := cfg.pid
		if pid == 0 {
			pid = uint64(os.Getpid())
		}
		l.SetPID(pid)
		l.SetProfilerAddr(uint64(int64(tab.AnchorAddr()) + cfg.bias))
		if cfg.samplePeriod > 0 {
			// The creator fixed capacity and layout, but the sampling period
			// is this process's recording decision: publish it through the
			// shared control words.
			l.SetSamplePeriod(cfg.samplePeriod)
		}
		log = l
	} else {
		anchorRuntime := uint64(int64(tab.AnchorAddr()) + cfg.bias)
		l, err := shmlog.New(cfg.capacity,
			shmlog.WithPID(cfg.pid),
			shmlog.WithProfilerAddr(anchorRuntime),
			shmlog.WithSync(cfg.sync),
			shmlog.WithShards(cfg.logShards()),
			shmlog.WithSamplePeriod(cfg.samplePeriod),
			shmlog.WithFlags(shmlog.EventCall|shmlog.EventReturn), // inactive until Start
		)
		if err != nil {
			return nil, fmt.Errorf("recorder: create log: %w", err)
		}
		log = l
	}
	r, err := newRecorder(tab, log, cfg, false)
	if err != nil && log.Mapped() {
		log.Close()
	}
	return r, err
}

// newRecorder wires the counter source and probe runtime over an existing
// log. host marks the recorder-process end of a shared mapping: it owns
// the counter thread and the recorder-ready handshake bit.
func newRecorder(tab *symtab.Table, log *shmlog.Log, cfg config, host bool) (*Recorder, error) {
	r := &Recorder{tab: tab, bias: cfg.bias, cfg: cfg, inject: cfg.inject, host: host}
	if log.Mapped() {
		r.sharedPath = log.Path()
	}
	mode := cfg.mode
	if mode == 0 {
		// Default mode: the software counter — except on the application
		// side of a shared mapping, where the hosting recorder process
		// already runs the increment loop and this process only reads it.
		if log.Mapped() && !host {
			mode = counterShared
		} else {
			mode = CounterSoftware
		}
	}
	switch {
	case cfg.source != nil:
		r.src = cfg.source
	case mode == counterShared:
		r.src = counter.NewReader(log)
	case mode == CounterSoftware:
		r.soft = counter.NewSoftware(log)
		// With an explicit injector, the counter thread checks the
		// CounterStall fault point every 1024 increments so chaos tests
		// can stall it; the default (nil) wiring adds nothing to the
		// counter loop.
		if cfg.inject != nil {
			in := cfg.inject
			r.soft.OnTick(func() { _ = in.Hit(faultinject.CounterStall) })
		}
		r.src = r.soft
	case mode == CounterTSC:
		r.src = counter.NewTSC()
	case mode == CounterVirtual:
		r.src = counter.NewVirtual(1)
	default:
		return nil, fmt.Errorf("recorder: unknown counter mode %d", cfg.mode)
	}

	var probeOpts []probe.Option
	if cfg.filter != nil {
		probeOpts = append(probeOpts, probe.WithFilter(cfg.filter))
	}
	if cfg.batch > 0 {
		probeOpts = append(probeOpts, probe.WithBatch(cfg.batch))
	}
	if cfg.adaptMax > 0 {
		probeOpts = append(probeOpts, probe.WithAdaptiveBatch(cfg.adaptMin, cfg.adaptMax))
	}
	rt, err := probe.New(log, r.src, probeOpts...)
	if err != nil {
		return nil, fmt.Errorf("recorder: create probe runtime: %w", err)
	}
	r.rt = rt
	return r, nil
}

// Log exposes the currently active shared-memory log segment.
func (r *Recorder) Log() *shmlog.Log { return r.rt.Log() }

// injector returns the configured fault injector, defaulting to the
// disabled package-level one.
func (r *Recorder) injector() *faultinject.Injector {
	if r.inject != nil {
		return r.inject
	}
	return faultinject.Default
}

// Table exposes the symbol table.
func (r *Recorder) Table() *symtab.Table {
	r.tabMu.RLock()
	defer r.tabMu.RUnlock()
	return r.tab
}

// SetTable swaps in a new symbol table. A hosting recorder starts with an
// (almost) empty table and installs the application's symbols once the
// instrumented process has written its side file; persistence and
// checkpointing pick up the new table on their next pass.
func (r *Recorder) SetTable(tab *symtab.Table) {
	if tab == nil {
		return
	}
	r.tabMu.Lock()
	r.tab = tab
	r.tabMu.Unlock()
}

// SharedPath returns the backing file of a cross-process shared log, or ""
// for an in-process (heap) recorder.
func (r *Recorder) SharedPath() string { return r.sharedPath }

// Source exposes the counter source used by probes.
func (r *Recorder) Source() counter.Source { return r.src }

// AddrOf returns the runtime (relocated) address of a registered function;
// workload setup uses it to wire probe call sites.
func (r *Recorder) AddrOf(name string) uint64 {
	static := r.Table().Addr(name)
	if static == 0 {
		return 0
	}
	return uint64(int64(static) + r.bias)
}

// Thread registers an application thread and returns its probe handle.
func (r *Recorder) Thread() *probe.Thread { return r.rt.Thread() }

// Start launches the counter (software mode) and activates recording.
func (r *Recorder) Start() error {
	r.stateMu.Lock()
	if r.started {
		r.stateMu.Unlock()
		return ErrAlreadyStarted
	}
	r.started = true
	r.startTime = time.Now()
	r.stateMu.Unlock()
	if r.soft != nil {
		r.soft.Start()
	}
	r.Log().SetActive(true)
	if r.host {
		// Attach handshake: the counter thread is live, tell the (possibly
		// not yet spawned) application it can start sampling.
		r.Log().SetReady(true)
	}
	return nil
}

// Stop deactivates recording and stops the counter. It is idempotent after
// the first successful call.
func (r *Recorder) Stop() error {
	r.stateMu.Lock()
	if !r.started {
		r.stateMu.Unlock()
		return ErrNotStarted
	}
	if r.stopped {
		r.stateMu.Unlock()
		return nil
	}
	r.stopped = true
	r.duration = time.Since(r.startTime)
	r.stateMu.Unlock()
	r.StopAutoRotate()
	r.Log().SetActive(false)
	if r.host {
		r.Log().SetReady(false)
	}
	// Release the trailing reserved slots of every thread's batched block
	// so the persisted log carries tombstones (dismissed by readers)
	// instead of permanent holes. The probe runtime's per-thread busy
	// handshake makes this safe even if a straggling probe overlaps Stop;
	// the straggler's event is recorded or dropped, never torn.
	r.rt.Flush()
	// The final checkpoint runs after the flush so it captures the fully
	// tombstoned log; a crash before this point is covered by the last
	// periodic checkpoint plus lenient recovery of the torn .part file.
	if err := r.StopCheckpoint(); err != nil {
		return fmt.Errorf("recorder: final checkpoint: %w", err)
	}
	if r.soft != nil {
		if err := r.soft.Stop(); err != nil {
			return fmt.Errorf("recorder: stop counter: %w", err)
		}
	}
	return nil
}

// Enable resumes recording mid-run (dynamic activation, paper §II-B).
func (r *Recorder) Enable() { r.Log().SetActive(true) }

// Disable pauses recording mid-run without stopping the counter.
func (r *Recorder) Disable() { r.Log().SetActive(false) }

// SetSamplePeriod changes the sampling period live (record 1-in-n call
// pairs; 0 and 1 restore full recording). Probes pick the change up on
// their next event via the control-generation handshake; rotation carries
// it into subsequent segments.
func (r *Recorder) SetSamplePeriod(n uint64) { r.Log().SetSamplePeriod(n) }

// SetThreadMask replaces the live thread deny-mask (bit (tid-1)%64
// suppresses matching threads; all-ones stops every thread, zero records
// everything).
func (r *Recorder) SetThreadMask(mask uint64) { r.Log().SetThreadMask(mask) }

// SetAddrMask replaces the live address deny-range [lo, hi): events whose
// target address falls inside are suppressed. lo == hi disables the range.
func (r *Recorder) SetAddrMask(lo, hi uint64) { r.Log().SetAddrMask(lo, hi) }

// Stats summarizes the run. It is shared by the post-run CLI summary and
// the live monitor, which samples it while the run is still in progress.
type Stats struct {
	// Entries is the number of committed log entries in the active
	// segment.
	Entries int
	// Dropped counts events lost to log overflow.
	Dropped uint64
	// CounterTicks is the final counter value.
	CounterTicks uint64
	// Duration is the wall-clock time between Start and Stop; while the
	// run is still in progress it is the time since Start.
	Duration time.Duration
	// Capacity is the active log segment's capacity in entries.
	Capacity int
	// FillPercent is Entries as a percentage of Capacity.
	FillPercent float64
	// Rotations counts completed log-segment rotations.
	Rotations int
	// DropRate is drops per second of run (0 before Start).
	DropRate float64
	// SamplePeriod is the live sampling period (1 when recording every
	// call pair).
	SamplePeriod uint64
	// Masked counts events suppressed by the sampling period or a deny
	// mask (accumulated across rotations).
	Masked uint64
	// BatchSize is the probe runtime's live reservation batch size — the
	// adaptive controller's current value, or the configured constant.
	BatchSize int
	// BatchGrows and BatchShrinks count the adaptive batch controller's
	// decisions (zero with a fixed batch).
	BatchGrows, BatchShrinks uint64
}

// Stats returns the run summary.
func (r *Recorder) Stats() Stats {
	r.stateMu.Lock()
	duration := r.duration
	if r.started && !r.stopped {
		duration = time.Since(r.startTime)
	}
	r.stateMu.Unlock()

	log := r.Log()
	// The log's counter header word is maintained by the software counter
	// thread; with a TSC/virtual source the source itself is authoritative.
	ticks := log.LoadCounter()
	if r.soft == nil && r.src != nil {
		ticks = r.src.Now()
	}
	// All of this process's writes flow through the probe runtime, whose
	// drop counter spans every rotated segment; the log header's counter
	// additionally sees drops suffered by another process sharing the
	// mapping. Report whichever view is larger.
	dropped := r.rt.Dropped()
	if ld := log.Dropped(); ld > dropped {
		dropped = ld
	}
	// Like drops, the masked count spans every rotated segment via the
	// probe runtime, while the header word additionally sees suppression in
	// another process sharing the mapping.
	masked := r.rt.Masked()
	if lm := log.Masked(); lm > masked {
		masked = lm
	}
	period := log.SamplePeriod()
	if period == 0 {
		period = 1
	}
	grows, shrinks := r.rt.BatchAdjustments()
	st := Stats{
		Entries:      log.Len(),
		Dropped:      dropped,
		CounterTicks: ticks,
		Duration:     duration,
		Capacity:     log.Capacity(),
		Rotations:    r.Segments(),
		SamplePeriod: period,
		Masked:       masked,
		BatchSize:    r.rt.Batch(),
		BatchGrows:   grows,
		BatchShrinks: shrinks,
	}
	if st.Capacity > 0 {
		st.FillPercent = 100 * float64(st.Entries) / float64(st.Capacity)
	}
	if secs := duration.Seconds(); secs > 0 {
		st.DropRate = float64(st.Dropped) / secs
	}
	return st
}

// Persist writes the profile bundle (symbols + log) to path.
func (r *Recorder) Persist(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("recorder: create %s: %w", path, err)
	}
	defer f.Close()
	if err := WriteBundle(f, r.Table(), r.Log()); err != nil {
		return fmt.Errorf("recorder: persist %s: %w", path, err)
	}
	return f.Sync()
}

// PersistTo writes the profile bundle to w.
func (r *Recorder) PersistTo(w io.Writer) error {
	return WriteBundle(w, r.Table(), r.Log())
}
