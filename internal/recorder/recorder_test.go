package recorder

import (
	"bytes"
	"errors"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"teeperf/internal/counter"
	"teeperf/internal/probe"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

func newTestRecorder(t *testing.T, opts ...Option) (*Recorder, *symtab.Table) {
	t.Helper()
	tab := symtab.New()
	tab.MustRegister("main", 16, "main.go", 1)
	tab.MustRegister("work", 16, "main.go", 10)
	opts = append([]Option{WithCounterMode(CounterVirtual), WithCapacity(1 << 10)}, opts...)
	r, err := New(tab, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return r, tab
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil table should fail")
	}
	tab := symtab.New()
	if _, err := New(tab, WithCapacity(0)); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := New(tab, WithCounterMode(CounterMode(42))); err == nil {
		t.Error("bad counter mode should fail")
	}
}

func TestLifecycle(t *testing.T) {
	r, _ := newTestRecorder(t)
	if err := r.Stop(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Stop before Start: err = %v, want ErrNotStarted", err)
	}
	// The log is inactive before Start: probes drop events.
	th := r.Thread()
	th.Enter(r.AddrOf("main"))
	if got := r.Log().Len(); got != 0 {
		t.Fatalf("events recorded before Start: %d", got)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); !errors.Is(err, ErrAlreadyStarted) {
		t.Fatalf("double Start: err = %v, want ErrAlreadyStarted", err)
	}
	th.Enter(r.AddrOf("main"))
	th.Exit(r.AddrOf("main"))
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := r.Stop(); err != nil {
		t.Fatalf("Stop must be idempotent: %v", err)
	}
	st := r.Stats()
	if st.Entries != 2 {
		t.Errorf("Stats.Entries = %d, want 2", st.Entries)
	}
	if st.Duration <= 0 {
		t.Errorf("Stats.Duration = %v, want > 0", st.Duration)
	}
}

func TestDynamicEnableDisable(t *testing.T) {
	r, _ := newTestRecorder(t)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.Stop(); err != nil {
			t.Error(err)
		}
	}()
	th := r.Thread()
	addr := r.AddrOf("work")

	th.Enter(addr)
	r.Disable()
	th.Enter(addr) // dropped
	th.Exit(addr)  // dropped
	r.Enable()
	th.Exit(addr)

	if got := r.Log().Len(); got != 2 {
		t.Errorf("log has %d entries, want 2 (enable/disable window)", got)
	}
}

func TestSoftwareCounterLifecycle(t *testing.T) {
	tab := symtab.New()
	r, err := New(tab, WithCapacity(1<<20)) // default software counter
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	th := r.Thread()
	// Record probe pairs while the software counter spins. On a
	// multi-core host the counter advances between probes; on a
	// single-core host scheduling decides, so yield periodically (the
	// real deployment sacrifices a whole core to the counter) and assert
	// only portably: the counter ran, and counter values never decrease.
	for i := 0; i < 1<<15; i++ {
		th.Enter(1)
		th.Exit(1)
		if i%1024 == 0 {
			runtime.Gosched()
		}
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if r.Stats().CounterTicks == 0 {
		t.Fatal("counter ticks = 0 after software-counter run")
	}
	var prev uint64
	distinct := 0
	for i := 0; i < r.Log().Len(); i++ {
		e, err := r.Log().Entry(i)
		if err != nil {
			t.Fatal(err)
		}
		if e.Counter < prev {
			t.Fatalf("entry %d: counter went backwards (%d -> %d)", i, prev, e.Counter)
		}
		if e.Counter != prev {
			distinct++
		}
		prev = e.Counter
	}
	if runtime.NumCPU() > 1 && distinct < 2 {
		t.Errorf("counter never advanced across %d entries on a %d-core host",
			r.Log().Len(), runtime.NumCPU())
	}
}

func TestCounterTSCAndCustomSource(t *testing.T) {
	tab := symtab.New()
	r, err := New(tab, WithCounterMode(CounterTSC), WithCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	if r.Source() == nil {
		t.Fatal("nil source")
	}
	v := counter.NewVirtual(5)
	r2, err := New(tab, WithCounterSource(v), WithCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Source() != v {
		t.Error("custom source not installed")
	}
}

func TestLoadBias(t *testing.T) {
	const bias = 0x7000
	r, tab := newTestRecorder(t, WithLoadBias(bias))
	staticMain := tab.Addr("main")
	if got := r.AddrOf("main"); got != staticMain+bias {
		t.Errorf("AddrOf(main) = %#x, want %#x", got, staticMain+bias)
	}
	if got := r.AddrOf("missing"); got != 0 {
		t.Errorf("AddrOf(missing) = %#x, want 0", got)
	}
	wantAnchor := uint64(int64(tab.AnchorAddr()) + bias)
	if got := r.Log().ProfilerAddr(); got != wantAnchor {
		t.Errorf("header anchor = %#x, want %#x", got, wantAnchor)
	}
	// The analyzer-side recovery: installing the recorded anchor as load
	// bias makes runtime addresses resolve.
	tab.SetLoadBias(r.Log().ProfilerAddr())
	s, err := tab.Resolve(r.AddrOf("main"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "main" {
		t.Errorf("resolved %q, want main", s.Name)
	}
}

func TestStatsDropped(t *testing.T) {
	r, _ := newTestRecorder(t, WithCapacity(1))
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	th := r.Thread()
	for i := 0; i < 5; i++ {
		th.Enter(1)
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Entries != 1 {
		t.Errorf("Entries = %d, want 1", st.Entries)
	}
	if st.Dropped == 0 {
		t.Error("Dropped = 0, want > 0")
	}
}

func TestSelectiveFilterOption(t *testing.T) {
	tab := symtab.New()
	hot := tab.MustRegister("hot", 16, "a.go", 1)
	cold := tab.MustRegister("cold", 16, "a.go", 2)
	f, err := probe.NewFilter(tab, func(s symtab.Symbol) bool { return s.Name == "hot" })
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(tab, WithCounterMode(CounterVirtual), WithCapacity(16), WithFilter(f))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	th := r.Thread()
	th.Enter(hot)
	th.Enter(cold)
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := r.Log().Len(); got != 1 {
		t.Errorf("selective run recorded %d entries, want 1", got)
	}
}

func TestMutexSyncOption(t *testing.T) {
	r, _ := newTestRecorder(t, WithSync(shmlog.SyncMutex))
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	th := r.Thread()
	th.Enter(1)
	th.Exit(1)
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := r.Log().Len(); got != 2 {
		t.Errorf("mutex-mode log has %d entries, want 2", got)
	}
}

func TestBundleRoundTrip(t *testing.T) {
	r, tab := newTestRecorder(t, WithPID(99))
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	th := r.Thread()
	main := r.AddrOf("main")
	work := r.AddrOf("work")
	th.Enter(main)
	th.Enter(work)
	th.Exit(work)
	th.Exit(main)
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := r.PersistTo(&buf); err != nil {
		t.Fatal(err)
	}
	gotTab, gotLog, err := ReadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotLog.PID() != 99 {
		t.Errorf("decoded PID = %d, want 99", gotLog.PID())
	}
	if gotLog.Len() != 4 {
		t.Errorf("decoded log has %d entries, want 4", gotLog.Len())
	}
	if gotTab.Len() != tab.Len() {
		t.Errorf("decoded %d symbols, want %d", gotTab.Len(), tab.Len())
	}
	entries := gotLog.Entries()
	if entries[1].Addr != work {
		t.Errorf("entry 1 addr = %#x, want %#x", entries[1].Addr, work)
	}
}

func TestPersistToFile(t *testing.T) {
	r, _ := newTestRecorder(t)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	r.Thread().Enter(1)
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.teeperf")
	if err := r.Persist(path); err != nil {
		t.Fatal(err)
	}
	_, log, err := ReadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() != 1 {
		t.Errorf("file round trip: %d entries, want 1", log.Len())
	}
	if _, _, err := ReadBundleFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestReadBundleErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{name: "empty", input: ""},
		{name: "bad header", input: "WRONG\n"},
		{name: "missing section", input: "TEEPERF-BUNDLE 1\n"},
		{name: "wrong section name", input: "TEEPERF-BUNDLE 1\nsection nope 4\nabcd"},
		{name: "bad length", input: "TEEPERF-BUNDLE 1\nsection syms x\n"},
		{name: "negative length", input: "TEEPERF-BUNDLE 1\nsection syms -1\n"},
		{name: "short body", input: "TEEPERF-BUNDLE 1\nsection syms 100\nabc"},
		{name: "garbage symbols", input: "TEEPERF-BUNDLE 1\nsection syms 4\nXXXX"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := ReadBundle(strings.NewReader(tt.input)); !errors.Is(err, ErrBadBundle) {
				t.Fatalf("err = %v, want ErrBadBundle", err)
			}
		})
	}
}

func TestWriteBundleValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBundle(&buf, nil, nil); err == nil {
		t.Error("nil args should fail")
	}
}

func TestStatsExtendedFields(t *testing.T) {
	r, _ := newTestRecorder(t) // capacity 1<<10
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	th := r.Thread()
	addr := r.AddrOf("work")
	for i := 0; i < 256; i++ {
		th.Enter(addr)
		th.Exit(addr)
	}

	st := r.Stats()
	if st.Capacity != 1<<10 {
		t.Errorf("Capacity = %d, want %d", st.Capacity, 1<<10)
	}
	if st.FillPercent != 50 {
		t.Errorf("FillPercent = %f, want 50 (512 of 1024 entries)", st.FillPercent)
	}
	if st.Rotations != 0 {
		t.Errorf("Rotations = %d before any rotation", st.Rotations)
	}
	if st.Duration <= 0 {
		t.Errorf("live Duration = %v while running, want > 0", st.Duration)
	}
	if st.CounterTicks == 0 {
		t.Error("CounterTicks = 0 with a virtual source")
	}

	if _, err := r.Rotate(); err != nil {
		t.Fatal(err)
	}
	st = r.Stats()
	if st.Rotations != 1 {
		t.Errorf("Rotations = %d after Rotate, want 1", st.Rotations)
	}
	if st.FillPercent != 0 {
		t.Errorf("FillPercent = %f on the fresh segment, want 0", st.FillPercent)
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsDropRate(t *testing.T) {
	tab := symtab.New()
	tab.MustRegister("work", 16, "main.go", 1)
	r, err := New(tab, WithCounterMode(CounterVirtual), WithCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	th := r.Thread()
	addr := r.AddrOf("work")
	for i := 0; i < 10; i++ { // 20 events into 8 slots
		th.Enter(addr)
		th.Exit(addr)
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Dropped != 12 {
		t.Errorf("Dropped = %d, want 12", st.Dropped)
	}
	if st.DropRate <= 0 {
		t.Errorf("DropRate = %f with %d drops over %v", st.DropRate, st.Dropped, st.Duration)
	}
	if st.FillPercent != 100 {
		t.Errorf("FillPercent = %f on a full log", st.FillPercent)
	}
}
