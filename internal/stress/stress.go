// Package stress is the overhead gauntlet's workload generator: a set of
// deterministic stress personalities that exercise the probe hot path from
// directions the Phoenix/kvstore/spdknvme workloads do not. Following
// Stress-SGX's argument that a profiler's overhead claim must be validated
// against controllable CPU/memory/IO-bound stressors rather than a handful
// of benchmarks, each personality isolates one pressure axis — call-tree
// fan-out, recursion depth, goroutine churn, tiny-function call rate,
// allocation pressure, or a mixed CPU/memory/IO profile — behind tunable
// intensity knobs.
//
// Personalities are self-validating: every run returns a checksum that
// depends only on the tuning (knobs + seed), never on timing or on the
// attached instrumentation, so an instrumented run is checked against the
// native baseline and a probe that perturbs workload behavior is caught,
// not silently measured. Determinism also extends to the event stream:
// for a fixed tuning the number of Enter/Exit events is exact, which is
// what makes the `teeperf stress` golden test and the CI ratio gate
// possible.
package stress

import (
	"errors"
	"fmt"
	"os"

	"teeperf/internal/probe"
	"teeperf/internal/symtab"
)

// Tuning is the intensity-knob set. The zero value of any field means
// "use the personality's default"; Seed 0 means seed 42. Not every
// personality reads every knob — each documents the ones it honors.
type Tuning struct {
	// Depth is the call-tree or recursion depth.
	Depth int
	// FanOut is the child count per call-tree node.
	FanOut int
	// Goroutines is the concurrent worker count per churn wave.
	Goroutines int
	// AllocBytes sizes allocations, memory slabs and IO chunks.
	AllocBytes int
	// Iterations is the top-level iteration budget.
	Iterations int
	// Seed drives all deterministic input generation.
	Seed uint64
}

// merged fills t's zero fields from def.
func (t Tuning) merged(def Tuning) Tuning {
	if t.Depth == 0 {
		t.Depth = def.Depth
	}
	if t.FanOut == 0 {
		t.FanOut = def.FanOut
	}
	if t.Goroutines == 0 {
		t.Goroutines = def.Goroutines
	}
	if t.AllocBytes == 0 {
		t.AllocBytes = def.AllocBytes
	}
	if t.Iterations == 0 {
		t.Iterations = def.Iterations
	}
	if t.Seed == 0 {
		t.Seed = def.Seed
	}
	if t.Seed == 0 {
		t.Seed = 42
	}
	return t
}

// Config wires a personality instance to its measurement environment.
type Config struct {
	// Hooks receives the main goroutine's entry/exit events (a TEE-Perf
	// probe thread, or probe.Nop for the native baseline).
	Hooks probe.Hooks
	// NewThread returns a fresh Hooks for each spawned goroutine — a
	// probe.Thread models a thread-local and must not be shared across
	// goroutines. Nil defaults to reusing Hooks, which is only correct
	// for stateless hooks such as probe.Nop.
	NewThread func() probe.Hooks
	// AddrOf resolves a registered symbol name to its runtime address.
	AddrOf func(name string) uint64
	// Dir is the scratch directory for IO-bound personalities (default
	// os.TempDir()).
	Dir string
}

func (c Config) validate() error {
	if c.Hooks == nil {
		return errors.New("stress: nil hooks")
	}
	if c.AddrOf == nil {
		return errors.New("stress: nil AddrOf")
	}
	return nil
}

// newThread returns the per-goroutine hooks factory (see Config.NewThread).
func (c Config) newThread() func() probe.Hooks {
	if c.NewThread != nil {
		return c.NewThread
	}
	return func() probe.Hooks { return c.Hooks }
}

// scratchDir returns the IO scratch directory.
func (c Config) scratchDir() string {
	if c.Dir != "" {
		return c.Dir
	}
	return os.TempDir()
}

// resolve maps each name through AddrOf, failing on unregistered symbols.
func (c Config) resolve(names ...string) (map[string]uint64, error) {
	out := make(map[string]uint64, len(names))
	for _, n := range names {
		a := c.AddrOf(n)
		if a == 0 {
			return nil, fmt.Errorf("stress: symbol %q not registered", n)
		}
		out[n] = a
	}
	return out, nil
}

// Runner executes one measured run and returns the workload checksum. A
// Runner is bound to one goroutine at a time (it may spawn more itself).
type Runner func() (uint64, error)

// Personality is one stress workload.
type Personality struct {
	// Name identifies the personality in sweeps, tables and BENCH rows.
	Name string
	// Profile classifies the pressure axis: cpu, sched, mem, io or mixed.
	Profile string
	// Summary is the one-line description shown by `teeperf stress -list`.
	Summary string
	// Symbols are the function names the personality's probes reference.
	Symbols []string
	// Contended marks personalities whose numbers are only meaningful
	// with real parallelism (skipped at shard counts > 1 on single-core
	// runners rather than measured as garbage).
	Contended bool
	// Default and Quick are the full-measurement and CI-smoke tunings.
	Default Tuning
	Quick   Tuning
	// New binds a Runner to cfg at tuning tn (merged over Default).
	New func(cfg Config, tn Tuning) (Runner, error)
}

// Tuning merges tn over the personality's default (Quick's when quick).
func (p Personality) Tuning(tn Tuning, quick bool) Tuning {
	def := p.Default
	if quick {
		def = p.Quick
	}
	return tn.merged(def)
}

// RegisterSymbols adds the personality's functions to the symbol table.
// Already-registered symbols are left untouched.
func (p Personality) RegisterSymbols(tab *symtab.Table) error {
	for i, name := range p.Symbols {
		if _, ok := tab.Lookup(name); ok {
			continue
		}
		if _, err := tab.Register(name, 64, "stress/"+p.Name+".go", (i+1)*10); err != nil {
			return fmt.Errorf("stress: register %s: %w", name, err)
		}
	}
	return nil
}

// All returns the gauntlet in sweep order.
func All() []Personality {
	return []Personality{
		FanOutTree(),
		Recursion(),
		Churn(),
		Storm(),
		AllocHeavy(),
		Mixed(),
	}
}

// ByName returns the named personality.
func ByName(name string) (Personality, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Personality{}, fmt.Errorf("stress: unknown personality %q", name)
}

// Names lists the personalities in sweep order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.Name
	}
	return out
}

// splitmix64 is the deterministic generator used for all workload inputs
// and checksums (same construction as the phoenix suite).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fillBytes deterministically fills buf from seed.
func fillBytes(buf []byte, seed uint64) {
	state := seed
	i := 0
	for ; i+8 <= len(buf); i += 8 {
		v := splitmix64(&state)
		buf[i] = byte(v)
		buf[i+1] = byte(v >> 8)
		buf[i+2] = byte(v >> 16)
		buf[i+3] = byte(v >> 24)
		buf[i+4] = byte(v >> 32)
		buf[i+5] = byte(v >> 40)
		buf[i+6] = byte(v >> 48)
		buf[i+7] = byte(v >> 56)
	}
	for ; i < len(buf); i++ {
		buf[i] = byte(splitmix64(&state))
	}
}

// sumBytes folds buf into a 64-bit checksum (FNV-1a).
func sumBytes(buf []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range buf {
		h ^= uint64(b)
		h *= prime
	}
	return h
}
