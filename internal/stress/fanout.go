package stress

// FanOutTree stresses wide call trees: every node of a Depth-level tree
// visits FanOut children, and every leaf does a small amount of arithmetic.
// This is the shape the paper's string_match approximates by accident —
// call count grows geometrically with fan-out while per-call work stays
// tiny, so the probe's fixed cost dominates. Knobs: Depth, FanOut,
// Iterations, Seed.
func FanOutTree() Personality {
	return Personality{
		Name:    "fanout",
		Profile: "cpu",
		Summary: "high fan-out call trees: FanOut^Depth probe-visible calls per iteration",
		Symbols: []string{"fan_root", "fan_node", "fan_leaf"},
		Default: Tuning{Depth: 4, FanOut: 8, Iterations: 8},
		Quick:   Tuning{Depth: 3, FanOut: 8, Iterations: 32},
		New: func(cfg Config, tn Tuning) (Runner, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			addr, err := cfg.resolve("fan_root", "fan_node", "fan_leaf")
			if err != nil {
				return nil, err
			}
			h := cfg.Hooks
			root, node, leaf := addr["fan_root"], addr["fan_node"], addr["fan_leaf"]
			var visit func(depth int, state *uint64) uint64
			visit = func(depth int, state *uint64) uint64 {
				h.Enter(node)
				var sum uint64
				if depth == 0 {
					h.Enter(leaf)
					sum = splitmix64(state) ^ splitmix64(state)
					h.Exit(leaf)
				} else {
					for c := 0; c < tn.FanOut; c++ {
						sum += visit(depth-1, state)
					}
				}
				h.Exit(node)
				return sum
			}
			return func() (uint64, error) {
				var sum uint64
				seedState := tn.Seed
				for it := 0; it < tn.Iterations; it++ {
					state := splitmix64(&seedState)
					h.Enter(root)
					sum += visit(tn.Depth, &state)
					h.Exit(root)
				}
				return sum, nil
			}, nil
		},
	}
}
