package stress

import (
	"fmt"
	"os"
)

// mixWalkStride is the byte stride of the memory-walk phase: larger than a
// cache line so the walk misses rather than streams.
const mixWalkStride = 128

// Mixed interleaves the three pressure axes in one profile: a CPU phase
// (splitmix rounds), a memory phase (strided walk over a slab sized by
// AllocBytes), and a real-IO phase (write the slab to a scratch file, read
// it back, delete it — genuine syscalls, not io.Discard). This is the
// closest personality to a production request loop, where probe overhead
// must be judged against work that regularly leaves userspace. Knobs:
// AllocBytes (slab and IO chunk size), Iterations, Seed.
func Mixed() Personality {
	return Personality{
		Name:    "mixed",
		Profile: "mixed",
		Summary: "mixed CPU/memory/IO profile: compute, strided slab walk, scratch-file IO",
		Symbols: []string{"mix_compute", "mix_walk", "mix_io"},
		Default: Tuning{AllocBytes: 64 << 10, Iterations: 128},
		Quick:   Tuning{AllocBytes: 16 << 10, Iterations: 32},
		New: func(cfg Config, tn Tuning) (Runner, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			addr, err := cfg.resolve("mix_compute", "mix_walk", "mix_io")
			if err != nil {
				return nil, err
			}
			h := cfg.Hooks
			compute, walk, ioAddr := addr["mix_compute"], addr["mix_walk"], addr["mix_io"]
			dir := cfg.scratchDir()
			slab := make([]byte, tn.AllocBytes)
			back := make([]byte, tn.AllocBytes)
			return func() (uint64, error) {
				var acc uint64
				seedState := tn.Seed
				for it := 0; it < tn.Iterations; it++ {
					iterSeed := splitmix64(&seedState)
					h.Enter(compute)
					state := iterSeed
					var v uint64
					for r := 0; r < 64; r++ {
						v ^= splitmix64(&state)
					}
					acc += v
					h.Exit(compute)

					h.Enter(walk)
					fillBytes(slab, iterSeed)
					for off := 0; off < len(slab); off += mixWalkStride {
						acc += uint64(slab[off])
					}
					h.Exit(walk)

					h.Enter(ioAddr)
					f, err := os.CreateTemp(dir, "teeperf-stress-mixed-*.tmp")
					if err != nil {
						h.Exit(ioAddr)
						return 0, fmt.Errorf("stress: mixed io: %w", err)
					}
					name := f.Name()
					_, werr := f.Write(slab)
					if werr == nil {
						_, werr = f.Seek(0, 0)
					}
					if werr == nil {
						_, werr = f.Read(back)
					}
					cerr := f.Close()
					rerr := os.Remove(name)
					h.Exit(ioAddr)
					if werr != nil {
						return 0, fmt.Errorf("stress: mixed io: %w", werr)
					}
					if cerr != nil {
						return 0, fmt.Errorf("stress: mixed io: %w", cerr)
					}
					if rerr != nil {
						return 0, fmt.Errorf("stress: mixed io: %w", rerr)
					}
					acc += sumBytes(back)
				}
				return acc, nil
			}, nil
		},
	}
}
