package stress

import "sync"

// churnTasks is the probe-visible task count each churn worker runs; the
// event volume scales through the Goroutines and Iterations knobs.
const churnTasks = 24

// Churn stresses thread registration and cross-goroutine log contention:
// every iteration ("wave") spawns Goroutines fresh workers, each of which
// registers its own probe thread, runs a fixed batch of small tasks and
// exits. Short-lived threads are the worst case for per-thread log shards
// (every wave lands on new TIDs) and for the runtime's thread registry.
// Per-worker checksums are combined commutatively, so the result is
// deterministic whatever the scheduler does. Knobs: Goroutines,
// Iterations (waves), Seed.
func Churn() Personality {
	return Personality{
		Name:      "churn",
		Profile:   "sched",
		Summary:   "goroutine churn: waves of short-lived workers, each a fresh probe thread",
		Symbols:   []string{"churn_spawn", "churn_worker", "churn_task"},
		Contended: true,
		Default:   Tuning{Goroutines: 16, Iterations: 16},
		Quick:     Tuning{Goroutines: 8, Iterations: 32},
		New: func(cfg Config, tn Tuning) (Runner, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			addr, err := cfg.resolve("churn_spawn", "churn_worker", "churn_task")
			if err != nil {
				return nil, err
			}
			h := cfg.Hooks
			newThread := cfg.newThread()
			spawn, worker, task := addr["churn_spawn"], addr["churn_worker"], addr["churn_task"]
			return func() (uint64, error) {
				var sum uint64
				for wave := 0; wave < tn.Iterations; wave++ {
					h.Enter(spawn)
					sums := make([]uint64, tn.Goroutines)
					var wg sync.WaitGroup
					for g := 0; g < tn.Goroutines; g++ {
						wg.Add(1)
						go func(g int) {
							defer wg.Done()
							th := newThread()
							th.Enter(worker)
							state := (tn.Seed ^ uint64(wave)<<32 ^ uint64(g)) * 0x9e3779b97f4a7c15
							var s uint64
							for t := 0; t < churnTasks; t++ {
								th.Enter(task)
								s += splitmix64(&state)
								th.Exit(task)
							}
							sums[g] = s
							th.Exit(worker)
						}(g)
					}
					wg.Wait()
					for _, s := range sums {
						sum += s
					}
					h.Exit(spawn)
				}
				return sum, nil
			}, nil
		},
	}
}
