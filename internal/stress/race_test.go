package stress

import (
	"testing"

	"teeperf/internal/recorder"
)

// TestStressRaceSmoke runs the two scheduler-hostile personalities —
// goroutine churn (fresh probe threads every wave) and the tiny-function
// storm (maximum probe call rate) — under a real attached recorder with a
// bounded iteration budget. Its job is to give the race detector
// concurrent probe registration, batched reservation and sampling-mask
// reads to chew on; the CI race job runs it explicitly.
func TestStressRaceSmoke(t *testing.T) {
	cfg := SweepConfig{
		Personalities: []string{"churn", "storm"},
		Periods:       []uint64{1, 8},
		ShardCounts:   []int{1, 4},
		Runs:          1,
		Warmups:       0,
		Quick:         true,
		Seed:          3,
		Counter:       recorder.CounterVirtual,
		// Force the contended shard rows on: under -race we want the
		// concurrency exercised even on a single-core runner, and the
		// numbers are discarded anyway.
		NumCPU: 8,
		Dir:    t.TempDir(),
		// Keep the budget bounded under the race detector's ~10x slowdown:
		// quick tunings plus a reduced churn wave width.
		Tune: Tuning{Goroutines: 4},
	}
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skipped) != 0 {
		t.Fatalf("race smoke skipped rows: %q", res.Skipped)
	}
	// 2 personalities x (native + 2 periods x 2 shard counts).
	if want := 2 * 5; len(res.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(res.Rows), want)
	}
}
