package stress

// allocLive is how many allocations stay reachable at once, forcing the
// buffers onto the heap and giving the collector standing work.
const allocLive = 8

// AllocHeavy stresses the allocator and collector alongside the probes:
// each iteration allocates an AllocBytes buffer, fills it
// deterministically and folds it into the checksum, keeping a small ring
// of allocations live so the memory is heap-resident and GC cycles run
// concurrently with probe recording. GC assists and write barriers are
// runtime work a call-count profiler never sees directly — this
// personality checks they do not distort the measured ratio. Knobs:
// AllocBytes, Iterations, Seed.
func AllocHeavy() Personality {
	return Personality{
		Name:    "alloc",
		Profile: "mem",
		Summary: "allocation-heavy path: per-iteration heap buffers with a live ring",
		Symbols: []string{"alloc_new", "alloc_fill", "alloc_sum"},
		Default: Tuning{AllocBytes: 16 << 10, Iterations: 2048},
		Quick:   Tuning{AllocBytes: 4 << 10, Iterations: 512},
		New: func(cfg Config, tn Tuning) (Runner, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			addr, err := cfg.resolve("alloc_new", "alloc_fill", "alloc_sum")
			if err != nil {
				return nil, err
			}
			h := cfg.Hooks
			newA, fill, sum := addr["alloc_new"], addr["alloc_fill"], addr["alloc_sum"]
			return func() (uint64, error) {
				live := make([][]byte, allocLive)
				var acc uint64
				seedState := tn.Seed
				for it := 0; it < tn.Iterations; it++ {
					fillSeed := splitmix64(&seedState)
					h.Enter(newA)
					buf := make([]byte, tn.AllocBytes)
					live[it%allocLive] = buf
					h.Exit(newA)

					h.Enter(fill)
					fillBytes(buf, fillSeed)
					h.Exit(fill)

					h.Enter(sum)
					acc += sumBytes(buf)
					h.Exit(sum)
				}
				return acc, nil
			}, nil
		},
	}
}
