package stress

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"teeperf/internal/recorder"
)

// quickSweep is the shared test configuration: virtual counter (no spare
// core needed, deterministic ticks), one run, tiny budgets.
func quickSweep() SweepConfig {
	return SweepConfig{
		Periods:     []uint64{1, 8},
		ShardCounts: []int{1},
		Runs:        1,
		Warmups:     0,
		Quick:       true,
		Seed:        7,
		Counter:     recorder.CounterVirtual,
	}
}

// TestSweepDeterministicColumns proves the timing-free columns of two
// identical sweeps agree exactly — the property the CLI golden rests on.
func TestSweepDeterministicColumns(t *testing.T) {
	cfg := quickSweep()
	cfg.Dir = t.TempDir()
	a, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := WriteDeterministic(&bufA, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteDeterministic(&bufB, b); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Errorf("deterministic output differs between sweeps\n--- a ---\n%s--- b ---\n%s", bufA.String(), bufB.String())
	}
	// 6 personalities x (native + 2 periods).
	if want := len(Names()) * 3; len(a.Rows) != want {
		t.Errorf("got %d rows, want %d", len(a.Rows), want)
	}
	for _, r := range a.Rows {
		if r.Period > 0 && r.Ratio <= 0 {
			t.Errorf("%s: non-positive ratio %f", r.Name(), r.Ratio)
		}
		if r.Period > 0 && r.Events == 0 {
			t.Errorf("%s: no committed events", r.Name())
		}
		if r.Period > 1 && r.Masked == 0 {
			t.Errorf("%s: sampling masked nothing", r.Name())
		}
		if r.Dropped != 0 {
			t.Errorf("%s: %d dropped events — capacity sized wrong", r.Name(), r.Dropped)
		}
	}
}

// TestSweepSkipsContendedRowsOnSingleCPU proves the CPU-count awareness:
// shard counts above 1 are contention experiments, and a single-core host
// must skip them loudly instead of recording garbage.
func TestSweepSkipsContendedRowsOnSingleCPU(t *testing.T) {
	cfg := quickSweep()
	cfg.Dir = t.TempDir()
	cfg.Personalities = []string{"storm"}
	cfg.ShardCounts = []int{1, 8}
	cfg.NumCPU = 1
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Shards > 1 {
			t.Errorf("single-CPU sweep measured contended row %s", r.Name())
		}
	}
	if len(res.Skipped) != 1 || !strings.Contains(res.Skipped[0], "storm/p*/s8") {
		t.Errorf("skip note missing or wrong: %q", res.Skipped)
	}

	// With parallelism available the same grid measures the s8 rows.
	cfg.NumCPU = 8
	res, err = Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var s8 int
	for _, r := range res.Rows {
		if r.Shards == 8 {
			s8++
		}
	}
	if s8 != len(cfg.Periods) {
		t.Errorf("multi-CPU sweep measured %d s8 rows, want %d", s8, len(cfg.Periods))
	}
	if len(res.Skipped) != 0 {
		t.Errorf("unexpected skips: %q", res.Skipped)
	}
}

// benchLine is the shape scripts/benchjson parses: a name starting with
// Benchmark, an iteration count, then value/unit pairs.
var benchLine = regexp.MustCompile(`^BenchmarkStressOverhead/[a-z]+(/native|/p\d+/s\d+)\t\d+\t\d+ ns/op\t\d+\.\d+ ratio\t\d+ events/s\t\d+\.\d+ drops/s\t\d+ masked$`)

// TestWriteBenchEmitsParseableRows pins the go-bench line format the
// BENCH_overhead.json pipeline depends on: every row one line, even
// field count, all five metrics present.
func TestWriteBenchEmitsParseableRows(t *testing.T) {
	cfg := quickSweep()
	cfg.Dir = t.TempDir()
	cfg.Personalities = []string{"fanout", "storm"}
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBench(&buf, res, cfg.Runs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if want := len(res.Rows); len(lines) != want {
		t.Fatalf("got %d bench lines, want %d", len(lines), want)
	}
	for _, l := range lines {
		if !benchLine.MatchString(l) {
			t.Errorf("bench line does not match the benchjson contract: %q", l)
		}
		if n := len(strings.Fields(l)); n < 4 || n%2 != 0 {
			t.Errorf("bench line has %d fields (want even, >= 4): %q", n, l)
		}
	}
}
