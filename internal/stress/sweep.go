package stress

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"teeperf/internal/fex"
	"teeperf/internal/probe"
	"teeperf/internal/recorder"
	"teeperf/internal/symtab"
)

// BenchPrefix is the go-bench-style name under which sweep rows are
// emitted; scripts/benchjson parses these lines into BENCH_overhead.json
// and scripts/bench_gate.sh gates the ratio column against it.
const BenchPrefix = "BenchmarkStressOverhead"

// SweepConfig parameterizes the overhead gauntlet: every selected
// personality runs uninstrumented (the native baseline) and then
// instrumented at each (sample period, shard count) combination.
type SweepConfig struct {
	// Personalities restricts the sweep (default: the full gauntlet).
	Personalities []string
	// Periods are the probe sampling periods to sweep (default 1, 8, 64).
	Periods []uint64
	// ShardCounts are the log shard counts to sweep (default 1, 8).
	ShardCounts []int
	// Runs and Warmups follow the Fex methodology (defaults 3 and 1).
	Runs    int
	Warmups int
	// Quick switches every personality to its CI-smoke tuning.
	Quick bool
	// Seed overrides the tuning seed for all personalities.
	Seed uint64
	// Tune overrides individual intensity knobs (zero fields keep the
	// personality's default).
	Tune Tuning
	// Counter picks the probe time source (default: software counter
	// when a spare core exists, TSC otherwise, as in Fig 4).
	Counter recorder.CounterMode
	// Capacity is the per-shard log capacity in entries (default 1<<19,
	// quick 1<<16); the log is created with Capacity*shards total so a
	// single-threaded personality cannot overflow its one segment.
	Capacity int
	// NumCPU is the measuring host's parallelism (default
	// runtime.NumCPU()). On single-core hosts, contention-sensitive rows
	// (shard counts > 1) are skipped rather than measured as garbage:
	// with goroutines time-sliced onto one core there is no cache-line
	// contention for sharding to relieve, so those ratios say nothing.
	NumCPU int
	// Dir is the scratch directory for IO-bound personalities.
	Dir string
}

func (c SweepConfig) withDefaults() SweepConfig {
	if len(c.Personalities) == 0 {
		c.Personalities = Names()
	}
	if len(c.Periods) == 0 {
		c.Periods = []uint64{1, 8, 64}
	}
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 8}
	}
	if c.Runs <= 0 {
		c.Runs = 3
	}
	if c.Warmups < 0 {
		c.Warmups = 0
	}
	if c.Seed != 0 && c.Tune.Seed == 0 {
		c.Tune.Seed = c.Seed
	}
	if c.Counter == 0 {
		c.Counter = recorder.CounterSoftware
		if runtime.NumCPU() < 2 {
			c.Counter = recorder.CounterTSC
		}
	}
	if c.Capacity <= 0 {
		c.Capacity = 1 << 19
		if c.Quick {
			c.Capacity = 1 << 17
		}
	}
	if c.NumCPU == 0 {
		c.NumCPU = runtime.NumCPU()
	}
	return c
}

// Row is one (personality, period, shards) measurement. Period 0 is the
// uninstrumented baseline the ratios divide by.
type Row struct {
	Personality string
	// Period is the probe sampling period (0 for the native baseline).
	Period uint64
	// Shards is the log shard count (0 for the native baseline).
	Shards int
	// Time is the fastest measured run. Scheduler interference only ever
	// adds time, so min-of-runs is the noise-robust statistic for the
	// ratio trajectory the CI gate enforces; the paper's geometric means
	// belong to the full experiments (internal/experiments), not this gate.
	Time time.Duration
	// Ratio is Time over the personality's native baseline.
	Ratio float64
	// Events is the committed entry count of one run; EventsPerSec is
	// Events over Time.
	Events       int
	EventsPerSec float64
	// Dropped and DropRate account events lost to a full log across the
	// measured runs; Masked counts events suppressed by sampling.
	Dropped  uint64
	DropRate float64
	Masked   uint64
	// Checksum is the workload result, identical across native and every
	// instrumented configuration (the sweep fails otherwise).
	Checksum uint64
}

// Name renders the row's sweep coordinate ("fanout/native", "storm/p8/s1").
func (r Row) Name() string {
	if r.Period == 0 {
		return r.Personality + "/native"
	}
	return fmt.Sprintf("%s/p%d/s%d", r.Personality, r.Period, r.Shards)
}

// SweepResult is the gauntlet outcome: the measured rows plus an explicit
// record of every combination that was skipped and why — a bounded sweep
// that silently drops rows would read as "covered everything".
type SweepResult struct {
	Rows    []Row
	Skipped []string
	// NumCPU is the parallelism the sweep ran under.
	NumCPU int
}

// Sweep measures instrumented-vs-native runtime for every selected
// personality across the period × shard grid. Every run's checksum is
// validated against the native baseline, so a probe interaction that
// changes workload behavior fails the sweep instead of skewing it.
func Sweep(cfg SweepConfig) (*SweepResult, error) {
	c := cfg.withDefaults()
	res := &SweepResult{NumCPU: c.NumCPU}
	for _, name := range c.Personalities {
		p, err := ByName(name)
		if err != nil {
			return nil, err
		}
		tn := p.Tuning(c.Tune, c.Quick)
		base, err := runNative(c, p, tn)
		if err != nil {
			return nil, fmt.Errorf("stress: %s native: %w", p.Name, err)
		}
		res.Rows = append(res.Rows, base)
		for _, shards := range c.ShardCounts {
			if shards > 1 && c.NumCPU < 2 {
				res.Skipped = append(res.Skipped, fmt.Sprintf(
					"%s/p*/s%d: contention-sensitive, needs >= 2 CPUs (have %d)",
					p.Name, shards, c.NumCPU))
				continue
			}
			for _, period := range c.Periods {
				row, err := runInstrumented(c, p, tn, period, shards, base)
				if err != nil {
					return nil, fmt.Errorf("stress: %s/p%d/s%d: %w", p.Name, period, shards, err)
				}
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

// runNative measures the uninstrumented baseline and pins the checksum.
func runNative(c SweepConfig, p Personality, tn Tuning) (Row, error) {
	tab := symtab.New()
	if err := p.RegisterSymbols(tab); err != nil {
		return Row{}, err
	}
	run, err := p.New(Config{
		Hooks:     probe.Nop{},
		NewThread: func() probe.Hooks { return probe.Nop{} },
		AddrOf:    tab.Addr,
		Dir:       c.Dir,
	}, tn)
	if err != nil {
		return Row{}, err
	}
	sum, fr, err := measure(p.Name+"/native", c, run)
	if err != nil {
		return Row{}, err
	}
	best := fr.Min()
	return Row{Personality: p.Name, Time: best, Ratio: 1, Checksum: sum}, nil
}

// runInstrumented measures one (period, shards) cell against base.
func runInstrumented(c SweepConfig, p Personality, tn Tuning, period uint64, shards int, base Row) (Row, error) {
	tab := symtab.New()
	rec, err := recorder.New(tab,
		recorder.WithCapacity(c.Capacity*shards),
		recorder.WithShards(shards),
		recorder.WithCounterMode(c.Counter),
		recorder.WithSamplePeriod(period))
	if err != nil {
		return Row{}, err
	}
	if err := p.RegisterSymbols(tab); err != nil {
		return Row{}, err
	}
	run, err := p.New(Config{
		Hooks:     rec.Thread(),
		NewThread: func() probe.Hooks { return rec.Thread() },
		AddrOf:    rec.AddrOf,
		Dir:       c.Dir,
	}, tn)
	if err != nil {
		return Row{}, err
	}
	if err := rec.Start(); err != nil {
		return Row{}, err
	}
	log := rec.Log()
	sum, fr, err := measure(fmt.Sprintf("%s/p%d/s%d", p.Name, period, shards), c, func() (uint64, error) {
		log.Reset() // fresh log per run, as in Fig 4
		return run()
	})
	if err != nil {
		_ = rec.Stop()
		return Row{}, err
	}
	events := log.Len()
	if err := rec.Stop(); err != nil {
		return Row{}, err
	}
	if sum != base.Checksum {
		return Row{}, fmt.Errorf("instrumented checksum %#x != native %#x — probes perturbed the workload", sum, base.Checksum)
	}
	st := rec.Stats()
	best := fr.Min()
	row := Row{
		Personality: p.Name,
		Period:      period,
		Shards:      shards,
		Time:        best,
		Events:      events,
		Dropped:     st.Dropped,
		DropRate:    st.DropRate,
		Masked:      st.Masked,
		Checksum:    sum,
	}
	if base.Time > 0 {
		row.Ratio = float64(best) / float64(base.Time)
	}
	if best > 0 {
		row.EventsPerSec = float64(events) / best.Seconds()
	}
	return row, nil
}

// measure wraps fex.Run around run, checking that every warmup and
// measured run produces the same checksum (the personalities promise
// determinism; a violation would invalidate the baseline comparison).
func measure(label string, c SweepConfig, run Runner) (uint64, fex.Result, error) {
	var (
		sum   uint64
		first = true
	)
	fr, err := fex.Run(label, c.Warmups, c.Runs, func() error {
		s, err := run()
		if err != nil {
			return err
		}
		if first {
			sum, first = s, false
		} else if s != sum {
			return fmt.Errorf("nondeterministic checksum: %#x then %#x", sum, s)
		}
		return nil
	})
	if err != nil {
		return 0, fex.Result{}, err
	}
	return sum, fr, nil
}

// WriteTable renders the sweep as a human-facing table, ratios relative to
// each personality's native baseline, with skipped combinations listed
// explicitly after the rows.
func WriteTable(w io.Writer, res *SweepResult) error {
	nameWidth := len("ROW")
	for _, r := range res.Rows {
		if n := len(r.Name()); n > nameWidth {
			nameWidth = n
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %10s  %7s  %10s  %12s  %9s  %10s\n",
		nameWidth, "ROW", "TIME_MS", "RATIO", "EVENTS", "EVENTS/S", "DROPS/S", "MASKED"); err != nil {
		return err
	}
	for _, r := range res.Rows {
		if _, err := fmt.Fprintf(w, "%-*s  %10.3f  %7.3f  %10d  %12.0f  %9.2f  %10d\n",
			nameWidth, r.Name(), float64(r.Time)/1e6, r.Ratio, r.Events,
			r.EventsPerSec, r.DropRate, r.Masked); err != nil {
			return err
		}
	}
	for _, s := range res.Skipped {
		if _, err := fmt.Fprintf(w, "# skipped %s\n", s); err != nil {
			return err
		}
	}
	return nil
}

// WriteBench emits the rows as `go test -bench`-style result lines under
// BenchPrefix, the format scripts/benchjson converts into
// BENCH_overhead.json: wall-clock as ns/op plus ratio, events/s, drops/s
// and masked-total metric pairs. Iterations is the measured run count.
func WriteBench(w io.Writer, res *SweepResult, runs int) error {
	if runs <= 0 {
		runs = 1
	}
	for _, r := range res.Rows {
		if _, err := fmt.Fprintf(w, "%s/%s\t%d\t%d ns/op\t%.4f ratio\t%.0f events/s\t%.2f drops/s\t%d masked\n",
			BenchPrefix, r.Name(), runs, r.Time.Nanoseconds(), r.Ratio,
			r.EventsPerSec, r.DropRate, r.Masked); err != nil {
			return err
		}
	}
	return nil
}

// WriteDeterministic renders only the timing-free columns — committed
// events, sampling-masked events and the workload checksum — which for a
// fixed seed are exact whatever the host is doing. This is the golden-test
// surface: it pins the event volume of every personality × period cell
// without pinning a single nanosecond.
func WriteDeterministic(w io.Writer, res *SweepResult) error {
	nameWidth := len("ROW")
	for _, r := range res.Rows {
		if n := len(r.Name()); n > nameWidth {
			nameWidth = n
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %10s  %10s  %16s\n",
		nameWidth, "ROW", "EVENTS", "MASKED", "CHECKSUM"); err != nil {
		return err
	}
	for _, r := range res.Rows {
		if _, err := fmt.Fprintf(w, "%-*s  %10d  %10d  %016x\n",
			nameWidth, r.Name(), r.Events, r.Masked, r.Checksum); err != nil {
			return err
		}
	}
	return nil
}
