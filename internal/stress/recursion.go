package stress

// Recursion stresses deep call stacks: one chain of Depth nested calls per
// iteration with a tiny mixing step at the base. Deep recursion exercises
// the probe's per-frame decision stack (the sampled-bit stack grows one
// bit per live frame) and the analyzer's stack reconstruction at depths
// the Phoenix workloads never reach. Knobs: Depth, Iterations, Seed.
func Recursion() Personality {
	return Personality{
		Name:    "recursion",
		Profile: "cpu",
		Summary: "deep recursion: one Depth-frame chain per iteration",
		Symbols: []string{"rec_descend", "rec_base"},
		Default: Tuning{Depth: 512, Iterations: 64},
		Quick:   Tuning{Depth: 256, Iterations: 128},
		New: func(cfg Config, tn Tuning) (Runner, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			addr, err := cfg.resolve("rec_descend", "rec_base")
			if err != nil {
				return nil, err
			}
			h := cfg.Hooks
			descend, base := addr["rec_descend"], addr["rec_base"]
			var down func(depth int, state *uint64) uint64
			down = func(depth int, state *uint64) uint64 {
				h.Enter(descend)
				var v uint64
				if depth == 0 {
					h.Enter(base)
					v = splitmix64(state)
					h.Exit(base)
				} else {
					v = down(depth-1, state) ^ splitmix64(state)
				}
				h.Exit(descend)
				return v
			}
			return func() (uint64, error) {
				var sum uint64
				seedState := tn.Seed
				for it := 0; it < tn.Iterations; it++ {
					state := splitmix64(&seedState)
					sum += down(tn.Depth, &state)
				}
				return sum, nil
			}, nil
		},
	}
}
