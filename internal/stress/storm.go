package stress

// stormChunk is how many tiny calls each storm_loop frame issues; keeps
// the loop/tiny event mix constant while Iterations scales total volume.
const stormChunk = 256

// Storm is the probe worst case the paper's Fig 4 bounds with
// string_match's 5.7x: functions whose bodies are a single arithmetic
// step, called as fast as possible, so almost all of the instrumented
// runtime IS the probe pair. Iterations counts tiny calls; they are
// issued in fixed-size chunks under storm_loop frames. Knobs:
// Iterations, Seed.
func Storm() Personality {
	return Personality{
		Name:    "storm",
		Profile: "cpu",
		Summary: "tiny-function storm: one-instruction bodies, probe cost dominates",
		Symbols: []string{"storm_loop", "storm_tiny"},
		Default: Tuning{Iterations: 100000},
		Quick:   Tuning{Iterations: 32768},
		New: func(cfg Config, tn Tuning) (Runner, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			addr, err := cfg.resolve("storm_loop", "storm_tiny")
			if err != nil {
				return nil, err
			}
			h := cfg.Hooks
			loop, tiny := addr["storm_loop"], addr["storm_tiny"]
			return func() (uint64, error) {
				state := tn.Seed
				var sum uint64
				for done := 0; done < tn.Iterations; {
					n := stormChunk
					if rest := tn.Iterations - done; n > rest {
						n = rest
					}
					h.Enter(loop)
					for i := 0; i < n; i++ {
						h.Enter(tiny)
						sum += splitmix64(&state)
						h.Exit(tiny)
					}
					h.Exit(loop)
					done += n
				}
				return sum, nil
			}, nil
		},
	}
}
