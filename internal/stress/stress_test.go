package stress

import (
	"sync/atomic"
	"testing"

	"teeperf/internal/probe"
	"teeperf/internal/symtab"
)

// countHooks counts Enter/Exit events. Atomic so one instance can be
// shared across churn workers.
type countHooks struct {
	enters atomic.Uint64
	exits  atomic.Uint64
}

func (h *countHooks) Enter(uint64) { h.enters.Add(1) }
func (h *countHooks) Exit(uint64)  { h.exits.Add(1) }

func (h *countHooks) total() uint64 { return h.enters.Load() + h.exits.Load() }

// runCounted builds p at tn against counting hooks and runs it once.
func runCounted(t *testing.T, p Personality, tn Tuning) (checksum, events uint64) {
	t.Helper()
	tab := symtab.New()
	if err := p.RegisterSymbols(tab); err != nil {
		t.Fatal(err)
	}
	h := &countHooks{}
	run, err := p.New(Config{
		Hooks:     h,
		NewThread: func() probe.Hooks { return h },
		AddrOf:    tab.Addr,
		Dir:       t.TempDir(),
	}, tn)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if h.enters.Load() != h.exits.Load() {
		t.Fatalf("unbalanced events: %d enters, %d exits", h.enters.Load(), h.exits.Load())
	}
	return sum, h.total()
}

// TestPersonalitiesDeterministic proves every personality yields the same
// checksum AND the same event count for a fixed seed, run after run — the
// property the golden test, the native-baseline validation and the ratio
// gate all build on.
func TestPersonalitiesDeterministic(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tn := p.Tuning(Tuning{Seed: 7}, true)
			sum1, ev1 := runCounted(t, p, tn)
			sum2, ev2 := runCounted(t, p, tn)
			if sum1 != sum2 {
				t.Errorf("checksum not deterministic: %#x vs %#x", sum1, sum2)
			}
			if ev1 != ev2 {
				t.Errorf("event count not deterministic: %d vs %d", ev1, ev2)
			}
			if ev1 == 0 {
				t.Error("personality produced no probe events")
			}
			// A different seed must change the result, or the checksum
			// validates nothing.
			sum3, _ := runCounted(t, p, p.Tuning(Tuning{Seed: 8}, true))
			if sum3 == sum1 {
				t.Errorf("checksum ignores the seed: %#x", sum1)
			}
		})
	}
}

// TestPersonalitiesScaleWithKnob proves each personality's primary
// intensity knob actually steers event volume: doubling it must produce
// strictly more probe events.
func TestPersonalitiesScaleWithKnob(t *testing.T) {
	cases := []struct {
		name string
		knob string
		bump func(*Tuning)
	}{
		{"fanout", "FanOut", func(tn *Tuning) { tn.FanOut *= 2 }},
		{"recursion", "Depth", func(tn *Tuning) { tn.Depth *= 2 }},
		{"churn", "Goroutines", func(tn *Tuning) { tn.Goroutines *= 2 }},
		{"storm", "Iterations", func(tn *Tuning) { tn.Iterations *= 2 }},
		{"alloc", "Iterations", func(tn *Tuning) { tn.Iterations *= 2 }},
		{"mixed", "Iterations", func(tn *Tuning) { tn.Iterations *= 2 }},
	}
	if len(cases) != len(All()) {
		t.Fatalf("knob table covers %d personalities, registry has %d", len(cases), len(All()))
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name+"/"+tc.knob, func(t *testing.T) {
			p, err := ByName(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			base := p.Tuning(Tuning{Seed: 7}, true)
			_, evBase := runCounted(t, p, base)
			bumped := base
			tc.bump(&bumped)
			_, evBumped := runCounted(t, p, bumped)
			if evBumped <= evBase {
				t.Errorf("doubling %s did not raise events: %d -> %d", tc.knob, evBase, evBumped)
			}
		})
	}
}

// TestChecksumHookIndependent proves instrumentation cannot change the
// workload result: Nop hooks and counting hooks agree for every
// personality. (The sweep re-checks this against real probes at runtime.)
func TestChecksumHookIndependent(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tn := p.Tuning(Tuning{Seed: 11}, true)
			tab := symtab.New()
			if err := p.RegisterSymbols(tab); err != nil {
				t.Fatal(err)
			}
			run, err := p.New(Config{Hooks: probe.Nop{}, AddrOf: tab.Addr, Dir: t.TempDir()}, tn)
			if err != nil {
				t.Fatal(err)
			}
			native, err := run()
			if err != nil {
				t.Fatal(err)
			}
			counted, _ := runCounted(t, p, tn)
			if native != counted {
				t.Errorf("checksum depends on hooks: nop %#x vs counted %#x", native, counted)
			}
		})
	}
}

// TestPersonalityRegistry pins the gauntlet roster: the acceptance bar is
// at least 6 personalities, and ByName must resolve every listed name.
func TestPersonalityRegistry(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("gauntlet has %d personalities, want >= 6", len(names))
	}
	for _, n := range names {
		p, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Summary == "" || p.Profile == "" || len(p.Symbols) == 0 {
			t.Errorf("%s: incomplete personality metadata", n)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted an unknown personality")
	}
}
