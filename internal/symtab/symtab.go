// Package symtab is TEE-Perf's debug-symbol substrate. It plays the role
// that the object file, DWARF information and the addr2line/readelf/c++filt
// UNIX tools play for the original analyzer: it assigns virtual text
// addresses to functions at instrumentation time, resolves runtime
// addresses back to symbols (correcting for the relocation offset derived
// from the well-known profiler anchor), and persists itself as a side file
// next to the recorded log.
package symtab

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// TextBase is the start of the virtual text segment, mirroring the
// traditional ELF load address.
const TextBase uint64 = 0x400000

// symbolAlign keeps symbol start addresses 16-byte aligned like a real
// code layout would.
const symbolAlign = 16

// ProfilerAnchorName is the well-known symbol whose runtime address is
// stored in the log header so the analyzer can compute the load bias of
// relocatable code.
const ProfilerAnchorName = "__teeperf_profiler"

// Errors returned by the symbol table.
var (
	// ErrNotFound is returned when an address resolves to no symbol.
	ErrNotFound = errors.New("symtab: address not found")
	// ErrDuplicate is returned when a symbol name is registered twice.
	ErrDuplicate = errors.New("symtab: duplicate symbol")
	// ErrBadFormat is returned when decoding a malformed side file.
	ErrBadFormat = errors.New("symtab: bad side-file format")
)

// Symbol describes one function in the virtual text segment.
type Symbol struct {
	// Name is the (possibly mangled) symbol name.
	Name string
	// Addr is the static virtual address assigned at registration.
	Addr uint64
	// Size is the symbol size in bytes.
	Size uint64
	// File and Line locate the function definition (line-table stand-in).
	File string
	Line int
}

// Table maps names to addresses and back. It is safe for concurrent use.
type Table struct {
	mu     sync.RWMutex
	syms   []Symbol // sorted by Addr
	byName map[string]int
	next   uint64
	bias   int64 // runtime load bias: runtimeAddr = staticAddr + bias
}

// New returns an empty table whose text segment starts at TextBase. The
// profiler anchor symbol is registered first, at the segment base, so its
// static address is always known.
func New() *Table {
	t := &Table{
		byName: make(map[string]int),
		next:   TextBase,
	}
	// The anchor cannot collide in a fresh table.
	if _, err := t.Register(ProfilerAnchorName, 64, "teeperf/probe", 1); err != nil {
		panic(fmt.Sprintf("symtab: registering anchor: %v", err))
	}
	return t
}

// Register assigns the next virtual address to a function and returns it.
// Size 0 is normalized to one aligned slot.
func (t *Table) Register(name string, size uint64, file string, line int) (uint64, error) {
	if name == "" {
		return 0, errors.New("symtab: empty symbol name")
	}
	if strings.ContainsAny(name, "\t\n") || strings.ContainsAny(file, "\t\n") {
		return 0, fmt.Errorf("symtab: name/file must not contain tabs or newlines: %q %q", name, file)
	}
	if size == 0 {
		size = symbolAlign
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byName[name]; ok {
		return 0, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	addr := t.next
	t.byName[name] = len(t.syms)
	t.syms = append(t.syms, Symbol{Name: name, Addr: addr, Size: size, File: file, Line: line})
	t.next += (size + symbolAlign - 1) / symbolAlign * symbolAlign
	return addr, nil
}

// MustRegister is Register for static setup code where a duplicate is a
// programming error.
func (t *Table) MustRegister(name string, size uint64, file string, line int) uint64 {
	addr, err := t.Register(name, size, file, line)
	if err != nil {
		panic(err)
	}
	return addr
}

// Lookup returns the symbol registered under name.
func (t *Table) Lookup(name string) (Symbol, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	i, ok := t.byName[name]
	if !ok {
		return Symbol{}, false
	}
	return t.syms[i], true
}

// Addr returns the static address of name, or 0 if unregistered.
func (t *Table) Addr(name string) uint64 {
	s, ok := t.Lookup(name)
	if !ok {
		return 0
	}
	return s.Addr
}

// AnchorAddr returns the static address of the profiler anchor.
func (t *Table) AnchorAddr() uint64 { return t.Addr(ProfilerAnchorName) }

// SetLoadBias installs the relocation offset computed from the runtime
// address of the profiler anchor (as recorded in the log header by the
// recorder). After this call Resolve accepts runtime addresses.
func (t *Table) SetLoadBias(runtimeAnchorAddr uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	static := t.syms[t.byName[ProfilerAnchorName]].Addr
	t.bias = int64(runtimeAnchorAddr) - int64(static)
}

// LoadBias returns the currently installed relocation offset.
func (t *Table) LoadBias() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.bias
}

// Resolve maps a runtime address to the symbol containing it.
func (t *Table) Resolve(runtimeAddr uint64) (Symbol, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	static := uint64(int64(runtimeAddr) - t.bias)
	i := sort.Search(len(t.syms), func(i int) bool {
		return t.syms[i].Addr > static
	}) - 1
	if i < 0 {
		return Symbol{}, fmt.Errorf("%w: %#x", ErrNotFound, runtimeAddr)
	}
	s := t.syms[i]
	if static >= s.Addr+s.Size {
		return Symbol{}, fmt.Errorf("%w: %#x", ErrNotFound, runtimeAddr)
	}
	return s, nil
}

// Name resolves a runtime address to a demangled display name, falling back
// to a hex rendering of the address (like addr2line's "??").
func (t *Table) Name(runtimeAddr uint64) string {
	s, err := t.Resolve(runtimeAddr)
	if err != nil {
		return fmt.Sprintf("0x%x", runtimeAddr)
	}
	return Demangle(s.Name)
}

// Symbols returns a copy of the table contents sorted by address.
func (t *Table) Symbols() []Symbol {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Symbol, len(t.syms))
	copy(out, t.syms)
	return out
}

// Len returns the number of registered symbols (including the anchor).
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.syms)
}

// sideFileHeader identifies the persisted symbol side file.
const sideFileHeader = "TEESYM1"

// WriteTo persists the table as a tab-separated text side file:
//
//	TEESYM1
//	<hex addr>\t<size>\t<file>:<line>\t<name>
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	bw := bufio.NewWriter(w)
	var n int64
	m, err := fmt.Fprintln(bw, sideFileHeader)
	n += int64(m)
	if err != nil {
		return n, err
	}
	for _, s := range t.syms {
		m, err := fmt.Fprintf(bw, "%x\t%d\t%s:%d\t%s\n", s.Addr, s.Size, s.File, s.Line, s.Name)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

var _ io.WriterTo = (*Table)(nil)

// Read decodes a side file previously written with WriteTo.
func Read(r io.Reader) (*Table, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: empty file", ErrBadFormat)
	}
	if sc.Text() != sideFileHeader {
		return nil, fmt.Errorf("%w: bad header %q", ErrBadFormat, sc.Text())
	}
	t := &Table{byName: make(map[string]int), next: TextBase}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		sym, err := parseSideLine(line)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, lineNo, err)
		}
		if _, dup := t.byName[sym.Name]; dup {
			return nil, fmt.Errorf("%w: line %d: duplicate %q", ErrBadFormat, lineNo, sym.Name)
		}
		t.byName[sym.Name] = len(t.syms)
		t.syms = append(t.syms, sym)
		if end := sym.Addr + sym.Size; end > t.next {
			t.next = (end + symbolAlign - 1) / symbolAlign * symbolAlign
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("symtab: read side file: %w", err)
	}
	sort.Slice(t.syms, func(i, j int) bool { return t.syms[i].Addr < t.syms[j].Addr })
	for i, s := range t.syms {
		t.byName[s.Name] = i
	}
	if _, ok := t.byName[ProfilerAnchorName]; !ok {
		return nil, fmt.Errorf("%w: missing profiler anchor symbol", ErrBadFormat)
	}
	return t, nil
}

func parseSideLine(line string) (Symbol, error) {
	fields := strings.SplitN(line, "\t", 4)
	if len(fields) != 4 {
		return Symbol{}, fmt.Errorf("want 4 fields, got %d", len(fields))
	}
	addr, err := strconv.ParseUint(fields[0], 16, 64)
	if err != nil {
		return Symbol{}, fmt.Errorf("addr: %v", err)
	}
	size, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return Symbol{}, fmt.Errorf("size: %v", err)
	}
	loc := fields[2]
	colon := strings.LastIndexByte(loc, ':')
	if colon < 0 {
		return Symbol{}, fmt.Errorf("location %q missing line number", loc)
	}
	lineNum, err := strconv.Atoi(loc[colon+1:])
	if err != nil {
		return Symbol{}, fmt.Errorf("line number: %v", err)
	}
	name := fields[3]
	if name == "" {
		return Symbol{}, errors.New("empty name")
	}
	return Symbol{Name: name, Addr: addr, Size: size, File: loc[:colon], Line: lineNum}, nil
}
