package symtab

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHasAnchor(t *testing.T) {
	tab := New()
	s, ok := tab.Lookup(ProfilerAnchorName)
	if !ok {
		t.Fatal("anchor not registered")
	}
	if s.Addr != TextBase {
		t.Errorf("anchor addr = %#x, want %#x", s.Addr, TextBase)
	}
	if tab.AnchorAddr() != TextBase {
		t.Errorf("AnchorAddr() = %#x, want %#x", tab.AnchorAddr(), TextBase)
	}
}

func TestRegisterAssignsAlignedIncreasingAddrs(t *testing.T) {
	tab := New()
	var prev uint64
	for i := 0; i < 100; i++ {
		addr, err := tab.Register(fmt.Sprintf("fn%d", i), uint64(i%50), "f.go", i)
		if err != nil {
			t.Fatal(err)
		}
		if addr%symbolAlign != 0 {
			t.Errorf("fn%d addr %#x not %d-byte aligned", i, addr, symbolAlign)
		}
		if addr <= prev {
			t.Errorf("fn%d addr %#x not increasing (prev %#x)", i, addr, prev)
		}
		prev = addr
	}
}

func TestRegisterValidation(t *testing.T) {
	tab := New()
	if _, err := tab.Register("", 1, "f.go", 1); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := tab.Register("tab\tname", 1, "f.go", 1); err == nil {
		t.Error("tab in name should fail")
	}
	if _, err := tab.Register("ok", 1, "f\n.go", 1); err == nil {
		t.Error("newline in file should fail")
	}
	if _, err := tab.Register("dup", 1, "f.go", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Register("dup", 1, "f.go", 2); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate register err = %v, want ErrDuplicate", err)
	}
}

func TestResolve(t *testing.T) {
	tab := New()
	a := tab.MustRegister("alpha", 32, "a.go", 10)
	b := tab.MustRegister("beta", 16, "b.go", 20)

	tests := []struct {
		name    string
		addr    uint64
		want    string
		wantErr bool
	}{
		{name: "alpha start", addr: a, want: "alpha"},
		{name: "alpha interior", addr: a + 31, want: "alpha"},
		{name: "beta start", addr: b, want: "beta"},
		{name: "past beta end", addr: b + 16, wantErr: true},
		{name: "below text base", addr: TextBase - 1, wantErr: true},
		{name: "anchor", addr: TextBase, want: ProfilerAnchorName},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, err := tab.Resolve(tt.addr)
			if tt.wantErr {
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("err = %v, want ErrNotFound", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if s.Name != tt.want {
				t.Errorf("Resolve(%#x).Name = %q, want %q", tt.addr, s.Name, tt.want)
			}
		})
	}
}

func TestLoadBias(t *testing.T) {
	tab := New()
	fn := tab.MustRegister("fn", 16, "f.go", 1)

	// Simulate the binary being loaded 0x1000 bytes higher than its
	// static link address: the log header records the runtime anchor.
	const bias = 0x1000
	tab.SetLoadBias(TextBase + bias)
	if got := tab.LoadBias(); got != bias {
		t.Fatalf("LoadBias() = %d, want %d", got, bias)
	}
	s, err := tab.Resolve(fn + bias)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "fn" {
		t.Errorf("resolved %q, want fn", s.Name)
	}
	// The unbiased address must now miss.
	if _, err := tab.Resolve(fn); err == nil {
		t.Error("unbiased address resolved after bias installation")
	}
}

func TestNegativeLoadBias(t *testing.T) {
	tab := New()
	fn := tab.MustRegister("fn", 16, "f.go", 1)
	tab.SetLoadBias(TextBase - 0x100) // loaded below link address
	s, err := tab.Resolve(fn - 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "fn" {
		t.Errorf("resolved %q, want fn", s.Name)
	}
}

func TestNameFallback(t *testing.T) {
	tab := New()
	if got := tab.Name(0x12); got != "0x12" {
		t.Errorf("Name(unknown) = %q, want hex fallback", got)
	}
	tab.MustRegister("_ZN7rocksdb5Stats3NowEv", 16, "s.cc", 1)
	addr := tab.Addr("_ZN7rocksdb5Stats3NowEv")
	if got := tab.Name(addr); got != "rocksdb::Stats::Now()" {
		t.Errorf("Name = %q, want demangled", got)
	}
}

func TestAddrUnknown(t *testing.T) {
	tab := New()
	if got := tab.Addr("missing"); got != 0 {
		t.Errorf("Addr(missing) = %#x, want 0", got)
	}
}

func TestSideFileRoundTrip(t *testing.T) {
	tab := New()
	tab.MustRegister("main", 64, "cmd/app/main.go", 12)
	tab.MustRegister("rocksdb::DBImpl::Get", 128, "db/db_impl.cc", 1500)
	tab.MustRegister("with spaces ok", 16, "weird file.go", 3)

	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tab.Len() {
		t.Fatalf("decoded %d symbols, want %d", got.Len(), tab.Len())
	}
	for _, want := range tab.Symbols() {
		s, ok := got.Lookup(want.Name)
		if !ok {
			t.Errorf("symbol %q missing after round trip", want.Name)
			continue
		}
		if s != want {
			t.Errorf("symbol %q = %+v, want %+v", want.Name, s, want)
		}
	}
	// Registration continues past the decoded symbols.
	addr, err := got.Register("extra", 16, "x.go", 1)
	if err != nil {
		t.Fatal(err)
	}
	syms := got.Symbols()
	if last := syms[len(syms)-1]; addr < last.Addr {
		t.Errorf("post-decode registration address %#x below max %#x", addr, last.Addr)
	}
}

func TestReadErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{name: "empty", input: ""},
		{name: "bad header", input: "NOPE\n"},
		{name: "missing fields", input: "TEESYM1\n400000\t64\n"},
		{name: "bad addr", input: "TEESYM1\nzzz\t64\tf.go:1\tname\n"},
		{name: "bad size", input: "TEESYM1\n400000\tx\tf.go:1\tname\n"},
		{name: "bad location", input: "TEESYM1\n400000\t64\tf.go\tname\n"},
		{name: "bad line number", input: "TEESYM1\n400000\t64\tf.go:x\tname\n"},
		{name: "empty name", input: "TEESYM1\n400000\t64\tf.go:1\t\n"},
		{name: "duplicate", input: "TEESYM1\n400000\t64\tf.go:1\t__teeperf_profiler\n400040\t64\tf.go:2\t__teeperf_profiler\n"},
		{name: "missing anchor", input: "TEESYM1\n400000\t64\tf.go:1\tmain\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tt.input)); !errors.Is(err, ErrBadFormat) {
				t.Fatalf("err = %v, want ErrBadFormat", err)
			}
		})
	}
}

func TestResolveProperty(t *testing.T) {
	// Property: every registered symbol resolves correctly at its start,
	// interior and last byte, for arbitrary sizes.
	f := func(sizes []uint8) bool {
		tab := New()
		names := make([]string, 0, len(sizes))
		for i, sz := range sizes {
			if len(names) >= 64 {
				break
			}
			name := fmt.Sprintf("f%d", i)
			if _, err := tab.Register(name, uint64(sz), "p.go", i); err != nil {
				return false
			}
			names = append(names, name)
		}
		for _, name := range names {
			s, _ := tab.Lookup(name)
			for _, off := range []uint64{0, s.Size / 2, s.Size - 1} {
				got, err := tab.Resolve(s.Addr + off)
				if err != nil || got.Name != name {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDemangle(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{give: "plain_c_symbol", want: "plain_c_symbol"},
		{give: "main", want: "main"},
		{give: "_Z4workv", want: "work()"},
		{give: "_ZN7rocksdb5Stats3NowEv", want: "rocksdb::Stats::Now()"},
		{give: "_ZN7rocksdb6DBImpl7GetImplERKNS_11ReadOptionsE", want: "rocksdb::DBImpl::GetImpl()"},
		{give: "_ZN7rocksdb15RandomGeneratorC1Ev", want: "rocksdb::RandomGenerator::RandomGenerator()"},
		{give: "_ZN7rocksdb9BenchmarkD2Ev", want: "rocksdb::Benchmark::~Benchmark()"},
		{give: "_ZNK7rocksdb5Slice4sizeEv", want: "rocksdb::Slice::size()"},
		{give: "_ZL9static_fnv", want: "static_fn()"},
		{give: "_ZN12_GLOBAL__N_118StartThreadWrapperEPv", want: "(anonymous namespace)::StartThreadWrapper()"},
		{give: "_ZN3stdIiE4funcEv", want: "std::func()"},                                         // template args skipped
		{give: "_Z", want: "_Z"},                                                                 // truncated: verbatim
		{give: "_ZN7rocksdb", want: "_ZN7rocksdb"},                                               // unterminated: verbatim
		{give: "_ZNSt6vectorIiSaIiEE9push_backERKi", want: "_ZNSt6vectorIiSaIiEE9push_backERKi"}, // substitutions unsupported: verbatim
		{give: "_Z999999999999999999999x", want: "_Z999999999999999999999x"},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			if got := Demangle(tt.give); got != tt.want {
				t.Errorf("Demangle(%q) = %q, want %q", tt.give, got, tt.want)
			}
		})
	}
}

func TestDemangleNeverPanics(t *testing.T) {
	f := func(s string) bool {
		// Must not panic on arbitrary input, and plain input comes back
		// verbatim.
		out := Demangle("_Z" + s)
		return out != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
