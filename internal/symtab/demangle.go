package symtab

import (
	"strconv"
	"strings"
)

// Demangle converts an Itanium-ABI-mangled C++ symbol name into a readable
// form, covering the subset the TEE-Perf analyzer needs from c++filt:
// nested names (namespaces, classes), constructors/destructors, template
// argument skipping, and plain C symbols (returned unchanged). Argument
// types are summarized as "()" — the paper's flame graphs truncate them
// anyway. Unparseable names are returned verbatim, which is what c++filt
// does for non-mangled input.
func Demangle(name string) string {
	if !strings.HasPrefix(name, "_Z") {
		return name
	}
	d := demangler{in: name, pos: 2}
	out, ok := d.encoding()
	if !ok {
		return name
	}
	return out
}

type demangler struct {
	in  string
	pos int
}

func (d *demangler) peek() byte {
	if d.pos >= len(d.in) {
		return 0
	}
	return d.in[d.pos]
}

func (d *demangler) encoding() (string, bool) {
	switch d.peek() {
	case 'N':
		return d.nestedName()
	case 'L':
		// local/internal linkage: _ZL<name>
		d.pos++
		s, ok := d.sourceName("")
		if !ok {
			return "", false
		}
		return s + "()", true
	default:
		if d.peek() >= '0' && d.peek() <= '9' {
			s, ok := d.sourceName("")
			if !ok {
				return "", false
			}
			return s + "()", true
		}
		return "", false
	}
}

// nestedName parses N <prefix...> <unqualified-name> E.
func (d *demangler) nestedName() (string, bool) {
	d.pos++ // consume 'N'
	// Skip CV-qualifiers on member functions (K, V, r) and ref-qualifiers.
	for {
		switch d.peek() {
		case 'K', 'V', 'r', 'R', 'O':
			d.pos++
			continue
		}
		break
	}
	var parts []string
	for d.peek() != 'E' && d.peek() != 0 {
		switch c := d.peek(); {
		case c >= '0' && c <= '9':
			s, ok := d.sourceName("")
			if !ok {
				return "", false
			}
			parts = append(parts, s)
		case c == 'C': // constructor C1/C2/C3
			d.pos += 2
			if len(parts) == 0 {
				return "", false
			}
			parts = append(parts, lastComponent(parts[len(parts)-1]))
		case c == 'D': // destructor D0/D1/D2
			d.pos += 2
			if len(parts) == 0 {
				return "", false
			}
			parts = append(parts, "~"+lastComponent(parts[len(parts)-1]))
		case c == 'I': // template args: skip balanced I...E
			if !d.skipTemplateArgs() {
				return "", false
			}
		case c == 'S': // substitution — not tracked; bail out gracefully
			return "", false
		default:
			return "", false
		}
	}
	if d.peek() != 'E' || len(parts) == 0 {
		return "", false
	}
	d.pos++
	return strings.Join(parts, "::") + "()", true
}

// sourceName parses <decimal length><identifier>.
func (d *demangler) sourceName(prefix string) (string, bool) {
	start := d.pos
	for d.pos < len(d.in) && d.in[d.pos] >= '0' && d.in[d.pos] <= '9' {
		d.pos++
	}
	if d.pos == start {
		return "", false
	}
	n, err := strconv.Atoi(d.in[start:d.pos])
	if err != nil || n <= 0 || d.pos+n > len(d.in) {
		return "", false
	}
	name := d.in[d.pos : d.pos+n]
	d.pos += n
	// Anonymous namespace encoding.
	if strings.HasPrefix(name, "_GLOBAL__N") {
		name = "(anonymous namespace)"
	}
	return prefix + name, true
}

// skipTemplateArgs consumes a balanced I ... E template argument list.
func (d *demangler) skipTemplateArgs() bool {
	depth := 0
	for d.pos < len(d.in) {
		switch d.in[d.pos] {
		case 'I':
			depth++
		case 'E':
			depth--
			if depth == 0 {
				d.pos++
				return true
			}
		}
		d.pos++
	}
	return false
}

func lastComponent(s string) string {
	if i := strings.LastIndex(s, "::"); i >= 0 {
		return s[i+2:]
	}
	return s
}
