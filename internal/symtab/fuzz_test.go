package symtab

import (
	"strings"
	"testing"
)

// FuzzDemangle: the c++filt stand-in must never panic and must return
// non-mangled input verbatim.
func FuzzDemangle(f *testing.F) {
	f.Add("_ZN7rocksdb5Stats3NowEv")
	f.Add("_ZN7rocksdb15RandomGeneratorC1Ev")
	f.Add("plain_name")
	f.Add("_Z")
	f.Add("_ZN12_GLOBAL__N_11fEv")
	f.Add("_ZN3stdIiE1fEv")
	f.Fuzz(func(t *testing.T, name string) {
		out := Demangle(name)
		if out == "" && name != "" {
			t.Fatalf("Demangle(%q) returned empty", name)
		}
		if !strings.HasPrefix(name, "_Z") && out != name {
			t.Fatalf("non-mangled input changed: %q -> %q", name, out)
		}
	})
}

// FuzzReadSideFile: the side-file parser must never panic, and accepted
// tables must round-trip.
func FuzzReadSideFile(f *testing.F) {
	tab := New()
	tab.MustRegister("main", 64, "m.go", 1)
	var sb strings.Builder
	if _, err := tab.WriteTo(&sb); err != nil {
		f.Fatal(err)
	}
	f.Add(sb.String())
	f.Add("TEESYM1\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, input string) {
		got, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var out strings.Builder
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := Read(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.Len() != got.Len() {
			t.Fatalf("round trip changed symbol count: %d -> %d", got.Len(), again.Len())
		}
	})
}
