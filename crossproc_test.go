//go:build linux || darwin

package teeperf

// Cross-process conformance suite: the tests in this file re-exec the test
// binary (Stress-SGX style) so a real second process appends to the shared
// mapping while this process hosts the counter — or vice versa. TestMain
// intercepts the TEEPERF_CROSSPROC_CHILD variable and runs the child role
// instead of the test list.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"teeperf/internal/analyzer"
	"teeperf/internal/counter"
	"teeperf/internal/recorder"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

const (
	crossprocChildEnv = "TEEPERF_CROSSPROC_CHILD"
	crossprocCkptEnv  = "TEEPERF_CROSSPROC_CKPT"
)

func TestMain(m *testing.M) {
	if mode := os.Getenv(crossprocChildEnv); mode != "" {
		crossprocChild(mode) // calls os.Exit
	}
	os.Exit(m.Run())
}

func childFail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crossproc child: "+format+"\n", args...)
	os.Exit(4)
}

// crossprocChild is the re-exec'd role. Modes:
//
//	deterministic — attach, run the fixed workload with a Virtual(1)
//	                counter, stop, exit (byte-identity test).
//	live          — same workload on the default shared counter source
//	                (the host process's spinning thread).
//	spin          — deterministic workload, then print WORKLOAD-DONE and
//	                block until the parent SIGKILLs us (salvage test).
//	spinrecord    — print SPINNING, then record call pairs forever (the
//	                live-mask throttle test; parent SIGKILLs us).
//	recorder      — host the mapping: Attach, Start, checkpoint, print
//	                RECORDER-READY, block until SIGKILL.
func crossprocChild(mode string) {
	shm := os.Getenv(recorder.SharedEnv)
	if shm == "" {
		childFail("%s not set", recorder.SharedEnv)
	}

	if mode == "recorder" {
		rec, err := recorder.Attach(shm)
		if err != nil {
			childFail("attach: %v", err)
		}
		if err := rec.Start(); err != nil {
			childFail("start: %v", err)
		}
		if ckpt := os.Getenv(crossprocCkptEnv); ckpt != "" {
			if err := rec.StartCheckpoint(ckpt, 25*time.Millisecond); err != nil {
				childFail("checkpoint: %v", err)
			}
			if err := rec.CheckpointNow(); err != nil {
				childFail("checkpoint pass: %v", err)
			}
		}
		fmt.Println("RECORDER-READY")
		select {} // parent SIGKILLs us
	}

	// Application roles: verify the attach handshake through a bare
	// mapping first, then profile through the ordinary Session facade
	// (which attaches again via the environment variable).
	l, err := shmlog.OpenFile(shm)
	if err != nil {
		childFail("handshake open: %v", err)
	}
	if cp := l.CreatorPID(); cp == 0 || cp == uint64(os.Getpid()) {
		childFail("creator pid = %d (own pid %d): mapping not created by the host", cp, os.Getpid())
	}
	if !l.WaitReady(5 * time.Second) {
		childFail("host recorder never set the ready flag")
	}
	if err := l.Close(); err != nil {
		childFail("handshake close: %v", err)
	}

	var opts []Option
	if mode != "live" {
		opts = append(opts, WithCounterSource(counter.NewVirtual(1)))
	}
	s, err := New(opts...)
	if err != nil {
		childFail("session: %v", err)
	}
	addrs, err := registerCrossprocSyms(s)
	if err != nil {
		childFail("register: %v", err)
	}
	if err := s.Start(); err != nil {
		childFail("start: %v", err)
	}
	if s.rec.SharedPath() != shm {
		childFail("session did not attach to %s", shm)
	}
	th, err := s.Thread()
	if err != nil {
		childFail("thread: %v", err)
	}
	if mode == "spinrecord" {
		// Record call pairs forever (gently rate-limited so the parent's
		// observation window cannot overflow the log). The parent pushes a
		// deny mask through a control mapping and watches recording stop —
		// this process is never told anything and never restarts.
		fmt.Println("SPINNING")
		for {
			th.Enter(addrs.alpha)
			th.Exit(addrs.alpha)
			time.Sleep(200 * time.Microsecond)
		}
	}
	runCrossprocWorkload(th, addrs)
	if mode == "live" {
		// Prove the host's counter thread is visible through the mapping.
		// The whole fixed workload can fit inside one scheduler timeslice
		// on a small machine, during which the host's spinning thread never
		// runs — so record one dedicated span around a sleeping poll that
		// yields the CPU until the counter moves. That span is guaranteed
		// non-zero ticks, which the parent asserts via the profile.
		th.Enter(addrs.after)
		c0 := s.rec.Log().LoadCounter()
		deadline := time.Now().Add(10 * time.Second)
		for s.rec.Log().LoadCounter() == c0 {
			if time.Now().After(deadline) {
				childFail("live counter never ticked (host thread not visible; started at %d)", c0)
			}
			time.Sleep(time.Millisecond)
		}
		th.Exit(addrs.after)
	}
	if err := s.Stop(); err != nil {
		childFail("stop: %v", err)
	}
	if mode == "spin" {
		fmt.Println("WORKLOAD-DONE")
		select {} // parent SIGKILLs us
	}
	os.Exit(0)
}

// crossprocAddrs carries the probe addresses of the fixed workload.
type crossprocAddrs struct{ main, alpha, beta, gamma, after uint64 }

func registerCrossprocSyms(s *Session) (crossprocAddrs, error) {
	var a crossprocAddrs
	var err error
	reg := func(dst *uint64, name string, line int) {
		if err != nil {
			return
		}
		*dst, err = s.RegisterFunc(name, "crossproc.go", line)
	}
	reg(&a.main, "cp_main", 1)
	reg(&a.alpha, "cp_alpha", 10)
	reg(&a.beta, "cp_beta", 20)
	reg(&a.gamma, "cp_gamma", 30)
	reg(&a.after, "cp_after", 40)
	return a, err
}

// runCrossprocWorkload is the fixed call pattern both processes replay:
// 40 iterations of main{alpha{beta}}, every other one also main{gamma}.
// With a Virtual(1) counter the resulting entry stream is fully
// deterministic.
func runCrossprocWorkload(th *Thread, a crossprocAddrs) {
	for i := 0; i < 40; i++ {
		th.Enter(a.main)
		th.Enter(a.alpha)
		th.Enter(a.beta)
		th.Exit(a.beta)
		th.Exit(a.alpha)
		if i%2 == 0 {
			th.Enter(a.gamma)
			th.Exit(a.gamma)
		}
		th.Exit(a.main)
	}
}

func requireMmap(t *testing.T) {
	t.Helper()
	if !shmlog.MmapSupported {
		t.Skip("file-backed shared mappings unsupported on this platform")
	}
}

// crossprocControlFolded records the same workload fully in-process (the
// trusted baseline) and returns its folded-stack rendering.
func crossprocControlFolded(t *testing.T) []byte {
	t.Helper()
	s, err := New(WithCounterSource(counter.NewVirtual(1)))
	if err != nil {
		t.Fatal(err)
	}
	addrs, err := registerCrossprocSyms(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	th, err := s.Thread()
	if err != nil {
		t.Fatal(err)
	}
	runCrossprocWorkload(th, addrs)
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	bundle := filepath.Join(t.TempDir(), "control.teeperf")
	if err := s.Persist(bundle); err != nil {
		t.Fatal(err)
	}
	return foldedOfBundle(t, bundle)
}

func foldedOfBundle(t *testing.T, path string) []byte {
	t.Helper()
	p, err := Load(path)
	if err != nil {
		t.Fatalf("load %s: %v", path, err)
	}
	return foldedOf(t, p)
}

func foldedOf(t *testing.T, p *Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFolded(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// spawnCrossprocChild re-executes the test binary in the given role.
func spawnCrossprocChild(t *testing.T, mode, shm string, extraEnv ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		crossprocChildEnv+"="+mode,
		recorder.SharedEnv+"="+shm)
	cmd.Env = append(cmd.Env, extraEnv...)
	return cmd
}

// hostAdoptSyms installs the symbol table the child published.
func hostAdoptSyms(t *testing.T, host *recorder.Recorder, shm string) *symtab.Table {
	t.Helper()
	tab, err := recorder.ReadSymsFile(recorder.SymsPath(shm))
	if err != nil {
		t.Fatalf("child never published its symbol side file: %v", err)
	}
	host.SetTable(tab)
	return tab
}

// TestCrossProcByteIdentical is the conformance anchor: a workload recorded
// across two processes (child appends, this process hosts the counter and
// persists) must produce byte-identical folded output to the same workload
// recorded entirely in-process.
func TestCrossProcByteIdentical(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	shm := filepath.Join(dir, "run.shm")

	host, err := recorder.Create(shm, recorder.WithCapacity(1<<14))
	if err != nil {
		t.Fatal(err)
	}
	defer host.Log().Close()
	if err := host.Start(); err != nil {
		t.Fatal(err)
	}
	if !host.Log().Ready() {
		t.Fatal("host Start did not set the ready flag")
	}

	cmd := spawnCrossprocChild(t, "deterministic", shm)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("child failed: %v\n%s", err, out)
	}
	// The child attached twice: once for the raw handshake check, once
	// through the Session facade.
	if gen := host.Log().AttachGen(); gen < 2 {
		t.Fatalf("attach generation = %d, want >= 2", gen)
	}
	hostAdoptSyms(t, host, shm)
	if err := host.Stop(); err != nil {
		t.Fatal(err)
	}
	bundle := filepath.Join(dir, "run.teeperf")
	if err := host.Persist(bundle); err != nil {
		t.Fatal(err)
	}

	cross := foldedOfBundle(t, bundle)
	control := crossprocControlFolded(t)
	if len(cross) == 0 {
		t.Fatal("cross-process folded output is empty")
	}
	if !bytes.Equal(cross, control) {
		t.Fatalf("cross-process profile diverges from in-process control\ncross:\n%s\ncontrol:\n%s", cross, control)
	}
}

// TestCrossProcLiveCounter runs the same topology on the real shared
// software counter: the host's spinning thread is the child's only time
// source, so non-zero ticks prove the counter word crosses the process
// boundary.
func TestCrossProcLiveCounter(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	shm := filepath.Join(dir, "run.shm")

	host, err := recorder.Create(shm, recorder.WithCapacity(1<<14))
	if err != nil {
		t.Fatal(err)
	}
	defer host.Log().Close()
	if err := host.Start(); err != nil {
		t.Fatal(err)
	}
	cmd := spawnCrossprocChild(t, "live", shm)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("child failed: %v\n%s", err, out)
	}
	hostAdoptSyms(t, host, shm)
	if err := host.Stop(); err != nil {
		t.Fatal(err)
	}
	bundle := filepath.Join(dir, "run.teeperf")
	if err := host.Persist(bundle); err != nil {
		t.Fatal(err)
	}

	p, err := Load(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := p.Func("cp_alpha"); !ok || st.Calls != 40 {
		t.Fatalf("cp_alpha = %+v, want 40 calls", st)
	}
	if st, ok := p.Func("cp_gamma"); !ok || st.Calls != 20 {
		t.Fatalf("cp_gamma = %+v, want 20 calls", st)
	}
	// The child recorded cp_after around a poll that waited for the host's
	// counter thread to move, so its span must carry non-zero ticks.
	if st, ok := p.Func("cp_after"); !ok || st.Calls != 1 {
		t.Fatalf("cp_after = %+v, want 1 call", st)
	}
	if p.TotalTicks == 0 {
		t.Fatal("live shared counter produced a zero-tick profile")
	}
}

// waitForLine reads the child's stdout until the marker line appears.
func waitForLine(t *testing.T, sc *bufio.Scanner, marker string) {
	t.Helper()
	deadline := time.After(30 * time.Second)
	got := make(chan bool, 1)
	go func() {
		for sc.Scan() {
			if sc.Text() == marker {
				got <- true
				return
			}
		}
		got <- false
	}()
	select {
	case ok := <-got:
		if !ok {
			t.Fatalf("child exited without printing %q", marker)
		}
	case <-deadline:
		t.Fatalf("timed out waiting for %q", marker)
	}
}

// assertKilled SIGKILLs the child and verifies that is how it died.
func assertKilled(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("wait after SIGKILL: %v", err)
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("child did not die by SIGKILL: %v", err)
	}
}

// TestCrossProcKillChildSalvage: the instrumented application is SIGKILLed
// after its workload but before a clean exit. The hosting recorder must
// still persist a bundle whose folded output is byte-identical to the
// in-process control, and lenient salvage of the raw mapping file must
// agree too.
func TestCrossProcKillChildSalvage(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	shm := filepath.Join(dir, "run.shm")

	host, err := recorder.Create(shm, recorder.WithCapacity(1<<14))
	if err != nil {
		t.Fatal(err)
	}
	defer host.Log().Close()
	if err := host.Start(); err != nil {
		t.Fatal(err)
	}

	cmd := spawnCrossprocChild(t, "spin", shm)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	waitForLine(t, bufio.NewScanner(stdout), "WORKLOAD-DONE")
	assertKilled(t, cmd)

	tab := hostAdoptSyms(t, host, shm)
	if err := host.Stop(); err != nil {
		t.Fatal(err)
	}
	bundle := filepath.Join(dir, "run.teeperf")
	if err := host.Persist(bundle); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(shm)
	if err != nil {
		t.Fatal(err)
	}

	control := crossprocControlFolded(t)

	// Path 1: the host-persisted bundle.
	if folded := foldedOfBundle(t, bundle); !bytes.Equal(folded, control) {
		t.Fatalf("host-persisted bundle diverges after child SIGKILL\ngot:\n%s\nwant:\n%s", folded, control)
	}

	// Path 2: lenient salvage of the raw mapping file, as if the host had
	// died too and only the file survived.
	log, rep, err := shmlog.ReadLenient(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if rep.EntriesSalvaged == 0 {
		t.Fatalf("raw mapping salvage came up empty: %v", rep)
	}
	p, err := analyzer.AnalyzeRecovered(log, tab, rep)
	if err != nil {
		t.Fatal(err)
	}
	if folded := foldedOf(t, p); !bytes.Equal(folded, control) {
		t.Fatalf("raw-mapping salvage diverges after child SIGKILL\ngot:\n%s\nwant:\n%s\nreport: %v", folded, control, rep)
	}
}

// TestCrossProcKillRecorderSalvage inverts the failure: the hosting
// recorder process is SIGKILLed mid-run while this process plays the
// instrumented application. The application must keep appending without
// blocking, and lenient salvage of the mapping must contain the post-kill
// events.
func TestCrossProcKillRecorderSalvage(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	shm := filepath.Join(dir, "run.shm")
	ckpt := filepath.Join(dir, "ckpt.teeperf")

	// The application side creates the region up front; the re-exec'd
	// recorder process adopts it with Attach.
	seed, err := shmlog.CreateFile(shm, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	cmd := spawnCrossprocChild(t, "recorder", shm, crossprocCkptEnv+"="+ckpt)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	waitForLine(t, bufio.NewScanner(stdout), "RECORDER-READY")

	tab := symtab.New()
	tab.MustRegister("cp_main", 16, "cp.go", 1)
	tab.MustRegister("cp_after", 16, "cp.go", 40)
	rec, err := recorder.New(tab, recorder.WithShared(shm))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Log().Close()
	if err := rec.Start(); err != nil {
		t.Fatal(err)
	}

	// The re-exec'd recorder's spin thread must be visible through the
	// mapping: the counter word advances without this process touching it.
	c0 := rec.Log().LoadCounter()
	deadline := time.Now().Add(10 * time.Second)
	for rec.Log().LoadCounter() == c0 {
		if time.Now().After(deadline) {
			t.Fatal("shared counter never advanced: recorder process not driving it")
		}
		time.Sleep(time.Millisecond)
	}

	th := rec.Thread()
	th.Enter(rec.AddrOf("cp_main"))
	th.Exit(rec.AddrOf("cp_main"))
	preKill := rec.Log().Len()
	if preKill == 0 {
		t.Fatal("no events reached the mapping before the kill")
	}

	assertKilled(t, cmd)

	// The lock-free log needs nothing from the dead recorder: appends
	// must keep landing.
	const postKillCalls = 5
	for i := 0; i < postKillCalls; i++ {
		th.Enter(rec.AddrOf("cp_after"))
		th.Exit(rec.AddrOf("cp_after"))
	}
	if got := rec.Log().Len(); got <= preKill {
		t.Fatalf("log did not grow after recorder death: %d -> %d", preKill, got)
	}
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Log().Msync(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(shm)
	if err != nil {
		t.Fatal(err)
	}

	log, rep, err := shmlog.ReadLenient(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	p, err := analyzer.AnalyzeRecovered(log, tab, rep)
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := p.Func("cp_after"); !ok || st.Calls != postKillCalls {
		t.Fatalf("post-kill events missing from salvage: %+v (report %v)", st, rep)
	}

	// The checkpoint bundle the dead recorder left behind must either load
	// leniently or be recognizably torn — never crash the loader.
	for _, path := range []string{ckpt, ckpt + ".part"} {
		if _, err := os.Stat(path); err != nil {
			continue
		}
		if _, err := LoadLenient(path); err != nil && !errors.Is(err, recorder.ErrBadBundle) {
			t.Fatalf("checkpoint remnant %s: %v", path, err)
		}
	}
}

// TestCrossProcLiveMaskStopsRecording is the adaptive-probe acceptance: a
// deny mask pushed through a writable control mapping stops a spinning
// child's recording live — no restart, no signal, no cooperation from the
// child beyond the generation check built into every probe event — and
// clearing the mask resumes it.
func TestCrossProcLiveMaskStopsRecording(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	shm := filepath.Join(dir, "run.shm")

	host, err := recorder.Create(shm, recorder.WithCapacity(1<<18))
	if err != nil {
		t.Fatal(err)
	}
	defer host.Log().Close()
	if err := host.Start(); err != nil {
		t.Fatal(err)
	}

	cmd := spawnCrossprocChild(t, "spinrecord", shm)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	waitForLine(t, bufio.NewScanner(stdout), "SPINNING")

	log := host.Log()
	waitGrowth := func(past int, what string) int {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if n := log.Len(); n > past {
				return n
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s (stuck at %d entries)", what, past)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitGrowth(0, "spinning child never recorded")

	// Push the mask the way the fleet agent does: through a separate
	// writable control mapping, not the host's own handle.
	ctl, err := shmlog.ControlFile(shm)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	ctl.SetThreadMask(^uint64(0))

	// The child notices on its next event; wait for the tail to settle,
	// then hold it still across a generous window.
	prev := log.Len()
	deadline := time.Now().Add(10 * time.Second)
	var frozen int
	for {
		time.Sleep(150 * time.Millisecond)
		cur := log.Len()
		if cur == prev {
			frozen = cur
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recording never stopped under an all-ones thread mask")
		}
		prev = cur
	}
	time.Sleep(300 * time.Millisecond)
	if got := log.Len(); got != frozen {
		t.Fatalf("recording continued under an all-ones mask: %d -> %d entries", frozen, got)
	}

	// The suppressed events surface in the shared masked counter (the child
	// flushes it in bulk, so allow it a moment).
	deadline = time.Now().Add(10 * time.Second)
	for log.Masked() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("masked counter never moved while the child spun against the mask")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Clearing the mask resumes recording in the same still-running child.
	ctl.SetThreadMask(0)
	waitGrowth(frozen, "recording did not resume after the mask cleared")

	assertKilled(t, cmd)
	if err := host.Stop(); err != nil {
		t.Fatal(err)
	}
}
