// Package rt is the link-time runtime for instrumented applications — the
// Go analogue of the paper's profiler.h + libprofiler pair. The
// teeperf-instrument compiler pass injects calls to Register (one per
// function, during package initialization, before any measured code runs)
// and Span (at every function entry). The runtime owns a process-global
// recorder: shared-memory log, counter, symbol table. Finish persists the
// profile bundle for offline analysis with the teeperf CLI or the analyzer
// API.
//
// Threads: each goroutine is attributed its own log thread automatically —
// the first probe on a new goroutine registers it. Resolving the current
// goroutine costs ~1µs per function call (Go offers no TLS), which is the
// documented price of profiling unmodified sources; the high-rate
// experiment harnesses in this repository use the explicit-handle probe
// API instead.
package rt

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"teeperf/internal/probe"
	"teeperf/internal/recorder"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// CounterMode mirrors recorder.CounterMode for configuration.
type CounterMode = recorder.CounterMode

// Counter modes accepted by Configure.
const (
	CounterSoftware = recorder.CounterSoftware
	CounterTSC      = recorder.CounterTSC
)

// Config controls the global runtime. Zero values select defaults.
type Config struct {
	// LogCapacity is the log size in entries (default 1<<20).
	LogCapacity int
	// Counter selects the time source (default software counter).
	Counter CounterMode
	// PID is recorded in the log header.
	PID uint64
	// SamplePeriod records one call pair in N (0 and 1 both record
	// everything). The period is published in the log header, so analyzers
	// scale the sampled weights back up and external controllers can move
	// it live.
	SamplePeriod uint64
}

var global struct {
	mu      sync.Mutex
	tab     *symtab.Table
	rec     *recorder.Recorder
	cfg     Config
	started bool
	// startedFast mirrors started for the probe hot path (Span checks it
	// with one atomic load instead of taking the mutex).
	startedFast atomic.Bool

	threadMu sync.RWMutex
	threads  map[int64]*probe.Thread
}

// Configure sets runtime options. It must be called before the first Span
// (i.e. before any instrumented function executes — typically first thing
// in main). Calling it after recording started returns an error.
func Configure(cfg Config) error {
	global.mu.Lock()
	defer global.mu.Unlock()
	if global.started {
		return errors.New("rt: already recording; Configure must run first")
	}
	global.cfg = cfg
	global.rec = nil // force re-init with the new config
	return nil
}

// Register adds one function to the global symbol table and returns its
// probe address. The instrumenter emits one Register call per function as
// a package-level variable initializer, so registration completes before
// main runs.
func Register(name, file string, line int) uint64 {
	global.mu.Lock()
	defer global.mu.Unlock()
	if err := ensureLocked(); err != nil {
		// Registration failures are programming errors in generated
		// code; surface them loudly.
		panic(fmt.Sprintf("rt: init: %v", err))
	}
	addr, err := global.tab.Register(name, 64, file, line)
	for i := 2; err != nil && i < 1000; i++ {
		// Disambiguate duplicate names (e.g. same function name in
		// multiple files of a package).
		addr, err = global.tab.Register(fmt.Sprintf("%s#%d", name, i), 64, file, line)
	}
	if err != nil {
		panic(fmt.Sprintf("rt: register %s: %v", name, err))
	}
	return addr
}

func ensureLocked() error {
	if global.rec != nil {
		return nil
	}
	if global.tab == nil {
		global.tab = symtab.New()
	}
	cfg := global.cfg
	pid := cfg.PID
	if pid == 0 {
		pid = uint64(os.Getpid())
	}
	opts := []recorder.Option{recorder.WithPID(pid)}
	if cfg.LogCapacity > 0 {
		opts = append(opts, recorder.WithCapacity(cfg.LogCapacity))
	}
	if cfg.Counter != 0 {
		opts = append(opts, recorder.WithCounterMode(cfg.Counter))
	}
	if cfg.SamplePeriod > 1 {
		opts = append(opts, recorder.WithSamplePeriod(cfg.SamplePeriod))
	}
	// A wrapper recorder process (`teeperf run`) hands its shared mapping
	// over via the environment; attach to it instead of allocating a heap
	// log, so events land in the recorder's address space. On platforms
	// without mmap support the variable is ignored (with a warning) and
	// recording stays in-process.
	if shm := os.Getenv(recorder.SharedEnv); shm != "" {
		if shmlog.MmapSupported {
			opts = append(opts, recorder.WithShared(shm))
		} else {
			fmt.Fprintf(os.Stderr, "rt: %s set but shared mappings are unsupported on this platform; recording in-process\n", recorder.SharedEnv)
		}
	}
	rec, err := recorder.New(global.tab, opts...)
	if err != nil {
		return err
	}
	global.rec = rec
	if global.threads == nil {
		global.threads = make(map[int64]*probe.Thread)
	}
	return nil
}

// start launches recording on first use.
func start() error {
	if global.startedFast.Load() {
		return nil
	}
	global.mu.Lock()
	defer global.mu.Unlock()
	if err := ensureLocked(); err != nil {
		return err
	}
	if global.started {
		return nil
	}
	if err := global.rec.Start(); err != nil {
		return err
	}
	if shm := global.rec.SharedPath(); shm != "" {
		// Every package-init Register has run by the first Span, so the
		// table is complete: publish the symbol side file for the hosting
		// recorder. Best-effort — a host missing names still gets addresses.
		if err := recorder.WriteSymsFile(recorder.SymsPath(shm), global.tab); err != nil {
			fmt.Fprintf(os.Stderr, "rt: publish symbols: %v\n", err)
		}
		// Give the host's counter thread a moment to come up so the first
		// events carry live tick values; an absent host is tolerated.
		global.rec.Log().WaitReady(2 * time.Second)
	}
	global.started = true
	global.startedFast.Store(true)
	return nil
}

// Span records the function-entry event for addr on the current goroutine
// and returns the function that records the matching exit. Generated code
// uses it as `defer __teeperf_span(addr)()`.
func Span(addr uint64) func() {
	if err := start(); err != nil {
		return func() {}
	}
	th := currentThread()
	th.Enter(addr)
	return func() { th.Exit(addr) }
}

// currentThread resolves (or lazily creates) the probe thread bound to the
// calling goroutine.
func currentThread() *probe.Thread {
	id := goid()
	global.threadMu.RLock()
	th, ok := global.threads[id]
	global.threadMu.RUnlock()
	if ok {
		return th
	}
	global.threadMu.Lock()
	defer global.threadMu.Unlock()
	if th, ok = global.threads[id]; ok {
		return th
	}
	th = global.rec.Thread()
	global.threads[id] = th
	return th
}

// goid extracts the current goroutine ID from the runtime stack header
// ("goroutine 123 [...").
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	// Skip "goroutine ".
	i := bytes.IndexByte(s, ' ')
	if i < 0 {
		return 0
	}
	s = s[i+1:]
	j := bytes.IndexByte(s, ' ')
	if j < 0 {
		return 0
	}
	id, err := strconv.ParseInt(string(s[:j]), 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// Enable resumes recording (dynamic activation).
func Enable() {
	global.mu.Lock()
	defer global.mu.Unlock()
	if global.rec != nil {
		global.rec.Enable()
	}
}

// Disable pauses recording without tearing the session down.
func Disable() {
	global.mu.Lock()
	defer global.mu.Unlock()
	if global.rec != nil {
		global.rec.Disable()
	}
}

// Finish stops recording and persists the profile bundle to path.
func Finish(path string) error {
	global.mu.Lock()
	defer global.mu.Unlock()
	if global.rec == nil || !global.started {
		return errors.New("rt: nothing recorded")
	}
	if err := global.rec.Stop(); err != nil {
		return err
	}
	if shm := global.rec.SharedPath(); shm != "" {
		// Refresh the side file (late Registers) and flush the mapping so
		// the hosting recorder persists a complete, durable region even if
		// this process exits immediately after.
		if err := recorder.WriteSymsFile(recorder.SymsPath(shm), global.tab); err != nil {
			fmt.Fprintf(os.Stderr, "rt: publish symbols: %v\n", err)
		}
		if err := global.rec.Log().Msync(); err != nil {
			fmt.Fprintf(os.Stderr, "rt: msync shared log: %v\n", err)
		}
	}
	return global.rec.Persist(path)
}

// Stats reports the current recorder statistics.
func Stats() recorder.Stats {
	global.mu.Lock()
	defer global.mu.Unlock()
	if global.rec == nil {
		return recorder.Stats{}
	}
	return global.rec.Stats()
}

// Reset discards all global state (tests and repeated in-process runs).
func Reset() {
	global.mu.Lock()
	defer global.mu.Unlock()
	if global.rec != nil && global.started {
		_ = global.rec.Stop()
	}
	if global.rec != nil && global.rec.SharedPath() != "" {
		_ = global.rec.Log().Close()
	}
	global.tab = nil
	global.rec = nil
	global.started = false
	global.startedFast.Store(false)
	global.threadMu.Lock()
	global.threads = nil
	global.threadMu.Unlock()
}
