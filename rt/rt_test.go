package rt

import (
	"path/filepath"
	"sync"
	"testing"

	"teeperf/internal/analyzer"
	"teeperf/internal/recorder"
)

func TestSpanRecordsAndFinishPersists(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Configure(Config{LogCapacity: 1 << 12, Counter: CounterTSC, PID: 77}); err != nil {
		t.Fatal(err)
	}
	fnA := Register("main.a", "main.go", 10)
	fnB := Register("main.b", "main.go", 20)

	func() {
		defer Span(fnA)()
		func() {
			defer Span(fnB)()
		}()
	}()

	st := Stats()
	if st.Entries != 4 {
		t.Fatalf("entries = %d, want 4", st.Entries)
	}

	path := filepath.Join(t.TempDir(), "out.teeperf")
	if err := Finish(path); err != nil {
		t.Fatal(err)
	}
	tab, log, err := recorder.ReadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.PID() != 77 {
		t.Errorf("pid = %d, want 77", log.PID())
	}
	p, err := analyzer.Analyze(log, tab)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := p.Func("main.b")
	if !ok {
		t.Fatal("main.b missing")
	}
	if got := b.Callers["main.a"]; got != 1 {
		t.Errorf("main.b callers[main.a] = %d, want 1", got)
	}
}

func TestConfigureAfterStartFails(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	fn := Register("x", "x.go", 1)
	Span(fn)() // starts recording
	if err := Configure(Config{}); err == nil {
		t.Error("Configure after recording started should fail")
	}
}

func TestFinishWithoutRecording(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Finish("/tmp/never"); err == nil {
		t.Error("Finish without recording should fail")
	}
}

func TestDuplicateRegistrationDisambiguates(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	a := Register("dup", "a.go", 1)
	b := Register("dup", "b.go", 1)
	if a == b {
		t.Errorf("duplicate names share an address: %#x", a)
	}
}

func TestEnableDisable(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	fn := Register("f", "f.go", 1)
	Span(fn)()
	before := Stats().Entries
	Disable()
	Span(fn)()
	if got := Stats().Entries; got != before {
		t.Errorf("entries grew while disabled: %d -> %d", before, got)
	}
	Enable()
	Span(fn)()
	if got := Stats().Entries; got != before+2 {
		t.Errorf("entries = %d after re-enable, want %d", got, before+2)
	}
}

func TestGoroutinesGetDistinctThreads(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Configure(Config{Counter: CounterTSC, LogCapacity: 1 << 14}); err != nil {
		t.Fatal(err)
	}
	fn := Register("worker", "w.go", 1)

	const workers = 4
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				Span(fn)()
			}
		}()
	}
	wg.Wait()

	path := filepath.Join(t.TempDir(), "mt.teeperf")
	if err := Finish(path); err != nil {
		t.Fatal(err)
	}
	tab, log, err := recorder.ReadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := analyzer.Analyze(log, tab)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Threads()); got != workers {
		t.Errorf("profile threads = %d, want %d", got, workers)
	}
	if p.Truncated != 0 || p.Unmatched != 0 {
		t.Errorf("unbalanced: %d/%d", p.Truncated, p.Unmatched)
	}
}

func TestGoidStable(t *testing.T) {
	a, b := goid(), goid()
	if a == 0 || a != b {
		t.Errorf("goid unstable: %d vs %d", a, b)
	}
	ch := make(chan int64, 1)
	go func() { ch <- goid() }()
	if other := <-ch; other == a {
		t.Error("different goroutines share a goid")
	}
}

func BenchmarkSpan(b *testing.B) {
	Reset()
	b.Cleanup(Reset)
	if err := Configure(Config{Counter: CounterTSC, LogCapacity: 1 << 24}); err != nil {
		b.Fatal(err)
	}
	fn := Register("bench", "b.go", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Span(fn)()
	}
}
